//! Integration tests for the campaign engine.
//!
//! The two properties campaigns rest on:
//!
//! 1. **Determinism across parallelism** — a campaign run on N worker
//!    threads produces outcomes byte-identical to the serial run, run for
//!    run, under fixed seeds and evaluation budgets.
//! 2. **Exactly-once characterisation** — however many runs and threads a
//!    campaign has, the shared cache characterises each distinct package
//!    configuration exactly once (the acceptance criterion of the engine:
//!    a 3-seed × 2-method campaign over the three standard benchmarks
//!    performs one characterisation per distinct interposer
//!    configuration).

use rlp_benchmarks::standard_benchmarks;
use rlp_engine::{CampaignEngine, CampaignMethod, CampaignReport, CampaignSpec};
use rlp_sa::SaConfig;
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::{AgentConfig, Method, RlPlannerConfig};

/// A fast backend cheap enough for integration tests (coarse grid, sparse
/// characterisation sweep spanning the benchmark die sizes).
fn quick_fast_backend() -> ThermalBackend {
    ThermalBackend::Fast {
        config: ThermalConfig::with_grid(12, 12),
        characterization: CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 10.0, 18.0, 26.0],
            distance_bins: 12,
            ..CharacterizationOptions::default()
        },
    }
}

/// A tiny-but-real RL method: three episodes with a small network on the
/// default environment grid (fine enough for every standard benchmark).
fn quick_rl_method() -> Method {
    Method::Rl {
        config: RlPlannerConfig {
            episodes: 3,
            episodes_per_update: 2,
            agent: AgentConfig {
                conv_channels: (2, 4),
                feature_dim: 16,
                rnd_hidden_dim: 16,
                rnd_embedding_dim: 4,
                ..AgentConfig::default()
            },
            ..RlPlannerConfig::default()
        },
    }
}

fn quick_sa_method() -> Method {
    Method::Sa {
        config: SaConfig {
            initial_temperature: 2.0,
            final_temperature: 0.05,
            cooling_rate: 0.85,
            moves_per_temperature: 10,
            max_evaluations: Some(40),
            ..SaConfig::default()
        },
    }
}

/// The acceptance grid: 2 methods × 3 standard benchmarks × 3 seeds.
fn acceptance_spec(parallelism: usize) -> CampaignSpec {
    CampaignSpec::builder()
        .systems(standard_benchmarks())
        .method(CampaignMethod::new(
            "rl",
            quick_rl_method(),
            quick_fast_backend(),
        ))
        .method(CampaignMethod::new(
            "sa-fast",
            quick_sa_method(),
            quick_fast_backend(),
        ))
        .seeds([1, 2, 3])
        .parallelism(parallelism)
        .build()
        .expect("valid acceptance spec")
}

/// Asserts two reports contain identical outcomes, run for run.
fn assert_identical_outcomes(serial: &CampaignReport, parallel: &CampaignReport) {
    assert_eq!(serial.runs.len(), parallel.runs.len());
    for (a, b) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(
            (&a.system, &a.method, a.seed),
            (&b.system, &b.method, b.seed)
        );
        // Bit-identical objective, placement and telemetry — not merely
        // statistically similar.
        assert_eq!(a.outcome.breakdown.reward, b.outcome.breakdown.reward);
        assert_eq!(
            a.outcome.breakdown.wirelength_mm,
            b.outcome.breakdown.wirelength_mm
        );
        assert_eq!(
            a.outcome.breakdown.max_temperature_c,
            b.outcome.breakdown.max_temperature_c
        );
        assert_eq!(a.outcome.placement, b.outcome.placement);
        assert_eq!(a.outcome.telemetry, b.outcome.telemetry);
        assert_eq!(a.outcome.evaluations, b.outcome.evaluations);
        assert_eq!(a.outcome.manifest, b.outcome.manifest);
    }
    // Cell aggregation is a pure function of the runs.
    assert_eq!(serial.cells.len(), parallel.cells.len());
    for (a, b) in serial.cells.iter().zip(&parallel.cells) {
        assert_eq!((&a.system, &a.method), (&b.system, &b.method));
        assert_eq!(a.best_run, b.best_run);
        assert_eq!(a.mean_reward, b.mean_reward);
        assert_eq!(a.min_reward, b.min_reward);
        assert_eq!(a.max_reward, b.max_reward);
    }
}

#[test]
fn acceptance_campaign_characterises_once_per_distinct_interposer() {
    // The three standard benchmarks span two distinct interposer outlines:
    // multi-gpu and cpu-dram share 55x55 mm, ascend910 is 65x50 mm.
    let distinct_interposers = {
        let mut outlines: Vec<(u64, u64)> = standard_benchmarks()
            .iter()
            .map(|s| {
                (
                    s.interposer_width().to_bits(),
                    s.interposer_height().to_bits(),
                )
            })
            .collect();
        outlines.sort_unstable();
        outlines.dedup();
        outlines.len()
    };
    assert_eq!(distinct_interposers, 2);

    let serial_engine = CampaignEngine::new();
    let serial = serial_engine
        .run(&acceptance_spec(1))
        .expect("serial campaign");
    assert_eq!(serial.runs.len(), 2 * 3 * 3);
    // Exactly one characterisation per distinct interposer configuration,
    // asserted via the cache telemetry; every other analyzer build is a hit.
    assert_eq!(serial.cache.misses, distinct_interposers);
    assert_eq!(serial.cache.hits, serial.runs.len() - distinct_interposers);
    assert_eq!(serial_engine.cache().len(), distinct_interposers);
    // Every run's outcome telemetry records how its analyzer was obtained.
    let run_misses: usize = serial
        .runs
        .iter()
        .map(|r| r.outcome.thermal_prep.cache_misses)
        .sum();
    let run_hits: usize = serial
        .runs
        .iter()
        .map(|r| r.outcome.thermal_prep.cache_hits)
        .sum();
    assert_eq!(run_misses, serial.cache.misses);
    assert_eq!(run_hits, serial.cache.hits);

    // The 2-thread campaign reproduces the serial outcomes run for run,
    // and still characterises exactly once per configuration.
    let parallel_engine = CampaignEngine::new();
    let parallel = parallel_engine
        .run(&acceptance_spec(2))
        .expect("parallel campaign");
    assert_eq!(parallel.parallelism, 2);
    assert_eq!(parallel.cache.misses, distinct_interposers);
    assert_identical_outcomes(&serial, &parallel);
}

#[test]
fn warm_cache_makes_repeat_campaigns_characterisation_free() {
    let engine = CampaignEngine::new();
    let spec = CampaignSpec::builder()
        .system(standard_benchmarks().remove(0))
        .method(CampaignMethod::new(
            "sa-fast",
            quick_sa_method(),
            quick_fast_backend(),
        ))
        .seeds([1, 2])
        .build()
        .unwrap();
    let cold = engine.run(&spec).expect("cold campaign");
    assert_eq!(cold.cache.misses, 1);
    let warm = engine.run(&spec).expect("warm campaign");
    assert_eq!(warm.cache.misses, 0);
    assert_eq!(warm.cache.hits, warm.runs.len());
    assert_identical_outcomes(&cold, &warm);
}

#[test]
fn failing_run_keeps_completed_cells_and_reports_the_failure() {
    // An SA grid too coarse for the system (no legal initial placement)
    // next to a healthy SA column: the campaign must complete fail-soft,
    // keeping the healthy cell's results.
    let spec = CampaignSpec::builder()
        .system(standard_benchmarks().remove(0))
        .method(CampaignMethod::new(
            "sa-fast",
            quick_sa_method(),
            quick_fast_backend(),
        ))
        .method(CampaignMethod::new(
            "sa-tiny-grid",
            Method::Sa {
                config: SaConfig {
                    grid: (2, 2),
                    ..SaConfig::default()
                },
            },
            quick_fast_backend(),
        ))
        .seeds([5])
        .build()
        .unwrap();
    let report = CampaignEngine::new()
        .run(&spec)
        .expect("fail-soft campaign");

    // The healthy column completed and aggregated...
    assert_eq!(report.runs.len(), 1);
    assert_eq!(report.runs[0].method, "sa-fast");
    assert_eq!(report.runs[0].index, 0);
    assert!(report.cell("multi-gpu", "sa-fast").is_some());
    // ...the failed cell has no summary...
    assert!(report.cell("multi-gpu", "sa-tiny-grid").is_none());
    // ...and the failure carries its grid coordinates and the effective
    // seed, resolved exactly like a successful run's manifest seed.
    assert_eq!(report.failures.len(), 1);
    let failure = &report.failures[0];
    assert_eq!(failure.system, "multi-gpu");
    assert_eq!(failure.method, "sa-tiny-grid");
    assert_eq!(failure.index, 1);
    assert_eq!(failure.seed, 5);
    assert_eq!(report.runs[0].seed, 5);
}

#[test]
fn failure_without_a_seeds_axis_reports_the_method_config_seed() {
    // With no seeds axis, a successful run's manifest reports the method
    // config's own seed; the failure path must resolve the same number
    // instead of reporting nothing.
    let config = SaConfig {
        grid: (2, 2),
        ..SaConfig::default()
    };
    let expected_seed = config.seed;
    let spec = CampaignSpec::builder()
        .system(standard_benchmarks().remove(0))
        .method(CampaignMethod::new(
            "sa-tiny-grid",
            Method::Sa { config },
            quick_fast_backend(),
        ))
        .build()
        .unwrap();
    let report = CampaignEngine::new()
        .run(&spec)
        .expect("fail-soft campaign");
    assert!(report.runs.is_empty());
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].seed, expected_seed);
}
