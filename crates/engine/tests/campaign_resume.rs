//! Integration tests for fail-soft streaming and resume.
//!
//! The acceptance scenario: a streamed campaign is killed mid-flight (here:
//! a sink that starts erroring after K records), restarted against the same
//! file, and the merged stream must contain the same deterministic results
//! as an uninterrupted run — record for record. Volatile telemetry
//! (runtimes, cache hit/miss splits, characterisation time) legitimately
//! differs between executions, so the comparison projects records onto
//! their deterministic fields first; everything else must match
//! byte-for-byte after the canonical re-render.

use rlp_chiplet::{Chiplet, ChipletSystem, Net};
use rlp_engine::{
    CampaignEngine, CampaignError, CampaignMethod, CampaignSpec, JsonlSink, MemorySink, RunEvent,
    RunSink,
};
use rlp_sa::SaConfig;
use rlp_thermal::{ThermalBackend, ThermalConfig};
use rlplanner::minijson::Value;
use rlplanner::{Budget, Method};
use std::io;
use std::path::PathBuf;

fn tiny_system() -> ChipletSystem {
    let mut sys = ChipletSystem::new("resume-demo", 24.0, 24.0);
    let a = sys.add_chiplet(Chiplet::new("a", 6.0, 6.0, 20.0));
    let b = sys.add_chiplet(Chiplet::new("b", 5.0, 5.0, 10.0));
    let c = sys.add_chiplet(Chiplet::new("c", 4.0, 4.0, 8.0));
    sys.add_net(Net::new(a, b, 32));
    sys.add_net(Net::new(b, c, 16));
    sys
}

fn grid_backend() -> ThermalBackend {
    ThermalBackend::Grid {
        config: ThermalConfig::with_grid(8, 8),
    }
}

/// A 2-method × 2-seed serial grid (4 runs): small enough to execute many
/// times per test, serial so the stream order is the grid order.
fn serial_spec() -> CampaignSpec {
    CampaignSpec::builder()
        .system(tiny_system())
        .method(CampaignMethod::new("sa", Method::sa(), grid_backend()))
        .method(CampaignMethod::new(
            "sa-slow-cool",
            Method::Sa {
                config: SaConfig {
                    cooling_rate: 0.9,
                    ..SaConfig::default()
                },
            },
            grid_backend(),
        ))
        .seeds([1, 2])
        .budget(Budget::Evaluations(12))
        .parallelism(1)
        .build()
        .expect("valid spec")
}

/// Simulates a campaign killed mid-flight: persists records until
/// `fail_after` have been written, then errors on every further emit.
struct FailingSink {
    inner: MemorySink,
    fail_after: usize,
}

impl RunSink for FailingSink {
    fn emit(&mut self, event: &RunEvent<'_>) -> io::Result<()> {
        if self.inner.lines().len() >= self.fail_after {
            return Err(io::Error::other("disk gone"));
        }
        self.inner.emit(event)
    }
}

/// Keys whose values are wall-clock or cache telemetry — legitimately
/// different between executions — stripped before byte-comparison.
const VOLATILE_KEYS: &[&str] = &[
    "runtime_s",
    "episodes_per_s",
    "characterization_s",
    "cache_hits",
    "cache_misses",
];

fn strip_volatile(value: &Value) -> Value {
    match value {
        Value::Obj(members) => Value::Obj(
            members
                .iter()
                .filter(|(key, _)| !VOLATILE_KEYS.contains(&key.as_str()))
                .map(|(key, inner)| (key.clone(), strip_volatile(inner)))
                .collect(),
        ),
        Value::Arr(items) => Value::Arr(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// The deterministic projection of one stream line: parse, strip volatile
/// telemetry, re-render canonically.
fn deterministic_projection(line: &str) -> String {
    strip_volatile(&Value::parse(line).expect("stream lines are valid JSON")).render()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rlp-engine-{}-{name}.jsonl", std::process::id()))
}

#[test]
fn sink_error_aborts_the_campaign_but_keeps_persisted_records() {
    let spec = serial_spec();
    let mut sink = FailingSink {
        inner: MemorySink::new(),
        fail_after: 2,
    };
    let err = CampaignEngine::new()
        .run_streamed(&spec, &mut sink)
        .expect_err("sink failure must abort the campaign");
    match err {
        CampaignError::Sink { index, ref reason } => {
            assert_eq!(index, 2, "the third record is the one that failed");
            assert!(reason.contains("disk gone"), "got: {reason}");
        }
        other => panic!("expected a sink error, got {other:?}"),
    }
    // Everything emitted before the failure is intact and well-formed.
    assert_eq!(sink.inner.lines().len(), 2);
    for (expected_index, line) in sink.inner.lines().iter().enumerate() {
        let value = Value::parse(line).expect("persisted lines are valid JSON");
        assert_eq!(
            value.get("schema").and_then(Value::as_str),
            Some("rlplanner.campaign-run/v1")
        );
        assert_eq!(
            value.get("index").and_then(Value::as_f64),
            Some(expected_index as f64)
        );
        assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
    }
}

#[test]
fn truncated_stream_resumes_to_the_uninterrupted_result() {
    let spec = serial_spec();
    let engine = CampaignEngine::new();

    // The reference: one uninterrupted streamed campaign.
    let mut reference_sink = MemorySink::new();
    let reference = engine
        .run_streamed(&spec, &mut reference_sink)
        .expect("uninterrupted campaign");
    assert_eq!(reference_sink.lines().len(), 4);
    assert_eq!(reference.resumed_runs, 0);

    // The interrupted campaign: killed (sink starts failing) after two
    // records made it to disk.
    let mut dying_sink = FailingSink {
        inner: MemorySink::new(),
        fail_after: 2,
    };
    engine
        .run_streamed(&spec, &mut dying_sink)
        .expect_err("interrupted campaign aborts");
    let path = temp_path("resume");
    std::fs::write(&path, format!("{}\n", dying_sink.inner.lines().join("\n")))
        .expect("persist truncated stream");

    // Restart against the truncated file: only the missing cells execute.
    let mut resumed_sink = JsonlSink::open(&path).expect("reopen stream");
    assert_eq!(resumed_sink.prior_len(), 2);
    let resumed = engine
        .run_streamed(&spec, &mut resumed_sink)
        .expect("resumed campaign");
    assert_eq!(resumed.resumed_runs, 2);
    assert_eq!(resumed.runs.len(), 4);
    assert!(resumed.failures.is_empty());
    let executed: usize = resumed.scheduler.workers.iter().map(|w| w.runs).sum();
    assert_eq!(executed, 2, "resumed cells must not re-execute");

    // The merged file holds the whole grid and is, after stripping volatile
    // wall-clock/cache telemetry, byte-identical to the uninterrupted
    // stream — the runs that executed reproduced the reference exactly.
    let merged = std::fs::read_to_string(&path).expect("read merged stream");
    let merged_lines: Vec<&str> = merged.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(merged_lines.len(), 4);
    for (line, reference_line) in merged_lines.iter().zip(reference_sink.lines()) {
        assert_eq!(
            deterministic_projection(line),
            deterministic_projection(reference_line),
        );
    }

    // The in-memory report agrees with the reference too, resumed records
    // included.
    for (a, b) in reference.runs.iter().zip(&resumed.runs) {
        assert_eq!(
            (a.index, &a.system, &a.method, a.seed),
            (b.index, &b.system, &b.method, b.seed)
        );
        assert_eq!(a.outcome.breakdown.reward, b.outcome.breakdown.reward);
        assert_eq!(a.outcome.placement, b.outcome.placement);
        assert_eq!(a.outcome.manifest, b.outcome.manifest);
        assert_eq!(a.outcome.evaluations, b.outcome.evaluations);
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn resuming_a_complete_stream_executes_nothing() {
    let spec = serial_spec();
    let engine = CampaignEngine::new();
    let mut first = MemorySink::new();
    let original = engine
        .run_streamed(&spec, &mut first)
        .expect("streamed campaign");

    let mut replay = MemorySink::with_prior(first.lines().to_vec());
    let resumed = engine
        .run_streamed(&spec, &mut replay)
        .expect("resumed campaign");
    assert_eq!(resumed.resumed_runs, 4);
    assert!(replay.lines().is_empty(), "nothing new to emit");
    let executed: usize = resumed.scheduler.workers.iter().map(|w| w.runs).sum();
    assert_eq!(executed, 0);
    assert_eq!(resumed.runs.len(), original.runs.len());
    for (a, b) in original.runs.iter().zip(&resumed.runs) {
        assert_eq!(a.outcome.breakdown.reward, b.outcome.breakdown.reward);
        assert_eq!(a.outcome.placement, b.outcome.placement);
    }
    // Aggregation over reconstructed records matches the original.
    assert_eq!(original.cells.len(), resumed.cells.len());
    for (a, b) in original.cells.iter().zip(&resumed.cells) {
        assert_eq!(a.best_run, b.best_run);
        assert_eq!(a.mean_reward, b.mean_reward);
    }
}

#[test]
fn error_records_are_retried_on_resume() {
    // A stream whose only record is a failure: resuming retries that grid
    // cell instead of skipping it.
    let spec = serial_spec();
    let engine = CampaignEngine::new();
    let mut first = MemorySink::new();
    engine
        .run_streamed(&spec, &mut first)
        .expect("streamed campaign");
    let error_line = "{\"schema\":\"rlplanner.campaign-run/v1\",\"index\":0,\"status\":\"error\",\
         \"system\":\"resume-demo\",\"system_index\":0,\"method\":\"sa\",\"seed\":1,\
         \"error\":\"transient\"}";
    let mut replay = MemorySink::with_prior(vec![error_line.to_string()]);
    let resumed = engine
        .run_streamed(&spec, &mut replay)
        .expect("resumed campaign");
    assert_eq!(resumed.resumed_runs, 0);
    assert_eq!(resumed.runs.len(), 4, "the failed cell was retried");
    assert!(resumed.failures.is_empty());
    assert_eq!(replay.lines().len(), 4);
}

#[test]
fn mismatched_or_malformed_streams_are_rejected() {
    let spec = serial_spec();
    let engine = CampaignEngine::new();
    let mut first = MemorySink::new();
    engine
        .run_streamed(&spec, &mut first)
        .expect("streamed campaign");
    let lines = first.lines().to_vec();

    // A spec with a different seeds axis: record seeds no longer match.
    let other_spec = CampaignSpec::builder()
        .system(tiny_system())
        .method(CampaignMethod::new("sa", Method::sa(), grid_backend()))
        .method(CampaignMethod::new(
            "sa-slow-cool",
            Method::Sa {
                config: SaConfig {
                    cooling_rate: 0.9,
                    ..SaConfig::default()
                },
            },
            grid_backend(),
        ))
        .seeds([9, 10])
        .budget(Budget::Evaluations(12))
        .parallelism(1)
        .build()
        .unwrap();
    let mut mismatched = MemorySink::with_prior(lines.clone());
    let err = engine
        .run_streamed(&other_spec, &mut mismatched)
        .expect_err("mismatched stream must be rejected");
    assert!(
        matches!(err, CampaignError::Resume { line: 1, .. }),
        "got {err:?}"
    );

    // A truncated (half-written) final line is named by line number.
    let mut truncated_lines = lines.clone();
    let last = truncated_lines.pop().unwrap();
    truncated_lines.push(last[..last.len() / 2].to_string());
    let mut truncated = MemorySink::with_prior(truncated_lines);
    let err = engine
        .run_streamed(&spec, &mut truncated)
        .expect_err("truncated line must be rejected");
    match err {
        CampaignError::Resume { line, ref reason } => {
            assert_eq!(line, 4);
            assert!(reason.contains("invalid JSON"), "got: {reason}");
        }
        other => panic!("expected a resume error, got {other:?}"),
    }

    // A duplicate grid index is rejected rather than silently overwritten.
    let mut duplicated_lines = lines;
    duplicated_lines.push(duplicated_lines[0].clone());
    let mut duplicated = MemorySink::with_prior(duplicated_lines);
    let err = engine
        .run_streamed(&spec, &mut duplicated)
        .expect_err("duplicate record must be rejected");
    match err {
        CampaignError::Resume { line, ref reason } => {
            assert_eq!(line, 5);
            assert!(reason.contains("duplicate"), "got: {reason}");
        }
        other => panic!("expected a resume error, got {other:?}"),
    }
}
