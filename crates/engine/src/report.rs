//! Campaign aggregation and the JSON campaign document.
//!
//! A [`CampaignReport`] is the aggregated result of one
//! [`crate::CampaignEngine::run`]: every run's [`FloorplanOutcome`] in grid
//! order, per-(system, method) [`CellSummary`]s (best-of-seeds run,
//! mean/min/max reward), and the campaign-level telemetry — wall-clock,
//! parallelism and the shared cache's hit/miss/characterisation-time delta.
//!
//! [`campaign_json`] renders the report as a hand-rolled JSON document with
//! the same conventions as [`rlplanner::report`] (stable field order,
//! RFC 8259 escaping, `null` for non-finite numbers):
//!
//! # Campaign document ([`campaign_json`])
//!
//! ```json
//! {
//!   "schema": "rlplanner.campaign/v1",
//!   "parallelism": 2,
//!   "resumed_runs": 0,
//!   "wall_clock_s": 12.5,
//!   "cache": { "hits": 15, "misses": 3, "characterization_s": 4.2 },
//!   "scheduler": {
//!     "workers": [ { "worker": 0, "busy_s": 11.9, "executed": 3 } ],
//!     "drain": [ { "index": 0, "worker": 0, "started_s": 0.1, "finished_s": 4.0 } ]
//!   },
//!   "cells": [
//!     {
//!       "system": "multi-gpu", "method": "rl", "seeds": [7, 8, 9],
//!       "best_seed": 8, "mean_reward": -1.9, "min_reward": -2.4,
//!       "max_reward": -1.6, "total_runtime_s": 30.1,
//!       "evaluations": 1800, "full_evals": 3, "incremental_evals": 1797,
//!       "mean_eval_us": 16.7, "episodes_per_s": 59.8,
//!       "best": { "schema": "rlplanner.outcome/v1", ... }
//!     }
//!   ],
//!   "runs": [
//!     {
//!       "index": 0, "system": "multi-gpu", "method": "rl", "seed": 7,
//!       "reward": -2.4, "wirelength_mm": 6200, "max_temperature_c": 78.4,
//!       "evaluations": 600, "eval_mode": "incremental",
//!       "full_evals": 1, "incremental_evals": 599, "runtime_s": 10.0,
//!       "cache_hits": 1, "cache_misses": 0
//!     }
//!   ],
//!   "failures": [
//!     {
//!       "index": 3, "system": "multi-gpu", "system_index": 0,
//!       "method": "sa", "seed": 8, "error": "initial placement failed: ..."
//!     }
//!   ]
//! }
//! ```
//!
//! `schema` identifies this exact layout ([`CAMPAIGN_SCHEMA`]); consumers
//! should check it before parsing. `cells` appear in grid order (systems
//! outermost, then methods); each cell's `best` is the full outcome
//! document ([`rlplanner::report::outcome_json`], schema
//! `rlplanner.outcome/v1`) of its best-of-seeds run, so the best placement
//! of every table cell — manifest included — travels inside the campaign
//! document. Each cell also aggregates its runs' evaluation telemetry:
//! `evaluations` is the total candidate count across seeds,
//! `full_evals`/`incremental_evals` split it by evaluation engine, and
//! `mean_eval_us` is the mean wall-clock per candidate evaluation in
//! microseconds — the number the incremental engine exists to shrink.
//! `episodes_per_s` is the cell's training throughput (total episodes over
//! total runtime) — the number the parallel rollout engine exists to grow;
//! it is `null` for cells without rollout telemetry (the SA baseline).
//! `runs` holds one compact record per completed run, also in grid order,
//! with the per-run evaluation-engine and cache telemetry that the cell and
//! campaign levels aggregate; each record's `index` is its position in the
//! spec's canonical grid. `failures` lists the grid cells whose solve
//! failed (the campaign is fail-soft: completed cells survive a failure);
//! `resumed_runs` counts runs reconstructed from a streamed
//! `rlplanner.campaign-run/v1` file instead of executed; `scheduler`
//! carries per-worker busy time and the queue-drain timeline for the runs
//! this execution performed.

use rlp_chiplet::ChipletSystem;
use rlp_thermal::ThermalCacheStats;
use rlplanner::report::{json_escape, json_num, outcome_json};
use rlplanner::{EvalCounts, FloorplanOutcome, PlanError};
use std::time::Duration;

/// Identifier of the campaign-document layout produced by
/// [`campaign_json`].
pub const CAMPAIGN_SCHEMA: &str = "rlplanner.campaign/v1";

/// One executed run of the campaign grid.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Index of the run in the spec's canonical grid order. With failures
    /// removed from [`CampaignReport::runs`], this is what still ties a
    /// record to its grid cell (and to its line in a streamed JSONL file).
    pub index: usize,
    /// Name of the run's system.
    pub system: String,
    /// Index of the system in [`CampaignReport::systems`].
    pub system_index: usize,
    /// Label of the run's method column.
    pub method: String,
    /// The seed the run actually used (from the seeds axis, or the method
    /// config's own seed when the axis was empty).
    pub seed: u64,
    /// The run's full outcome.
    pub outcome: FloorplanOutcome,
}

/// One failed run of the campaign grid. Failures no longer abort the
/// campaign: completed cells keep their results and every failure is
/// reported here (and emitted as an error record on a streaming sink, so a
/// resumed campaign retries it).
#[derive(Debug, Clone, PartialEq)]
pub struct RunFailure {
    /// Index of the run in the spec's canonical grid order.
    pub index: usize,
    /// Name of the run's system.
    pub system: String,
    /// Index of the system in [`CampaignReport::systems`].
    pub system_index: usize,
    /// Label of the run's method column.
    pub method: String,
    /// The seed the run was executed with — resolved exactly like a
    /// successful run's manifest seed (the seeds-axis override, or the
    /// method config's own seed), so the two paths always report the same
    /// number for the same grid cell.
    pub seed: u64,
    /// The underlying solve error.
    pub error: PlanError,
}

/// Per-worker utilisation of one campaign execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Wall-clock this worker spent inside solves (queue-wait excluded).
    pub busy: Duration,
    /// Runs this worker executed (resumed runs are skipped, not executed).
    pub runs: usize,
}

/// One run draining off the shared queue: which worker took it and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainEvent {
    /// Index of the run in the spec's canonical grid order.
    pub index: usize,
    /// Worker that executed the run.
    pub worker: usize,
    /// Offset from campaign start when the solve began.
    pub started: Duration,
    /// Offset from campaign start when the solve finished.
    pub finished: Duration,
}

/// Scheduler-utilisation telemetry: how evenly the grid drained across the
/// worker pool. Events appear in completion order (the order records hit a
/// streaming sink); all values are wall-clock telemetry, never inputs to
/// results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerTelemetry {
    /// One entry per worker thread, in worker order.
    pub workers: Vec<WorkerTelemetry>,
    /// The queue-drain timeline, in completion order.
    pub drain: Vec<DrainEvent>,
}

/// Per-(system, method) aggregation over the seeds axis — one table cell.
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// Name of the cell's system.
    pub system: String,
    /// Index of the system in [`CampaignReport::systems`].
    pub system_index: usize,
    /// Label of the cell's method column.
    pub method: String,
    /// Seeds of the cell's runs, in run order.
    pub seeds: Vec<u64>,
    /// Index into [`CampaignReport::runs`] of the best-of-seeds run
    /// (highest reward).
    pub best_run: usize,
    /// Mean reward across the cell's runs.
    pub mean_reward: f64,
    /// Worst (most negative) reward across the cell's runs.
    pub min_reward: f64,
    /// Best reward across the cell's runs.
    pub max_reward: f64,
    /// Summed optimisation runtime of the cell's runs.
    pub total_runtime: Duration,
    /// Total candidate evaluations across the cell's runs, split by
    /// evaluation engine.
    pub eval_counts: EvalCounts,
    /// Mean wall-clock per candidate evaluation across the cell's runs
    /// (`total_runtime / eval_counts.total()`); zero when no evaluations
    /// ran. The per-move speed metric the incremental engine targets.
    pub mean_eval_time: Duration,
    /// Training throughput across the cell's runs: total episodes divided
    /// by total optimisation runtime, in episodes per second. `None` for
    /// cells whose runs report no rollout telemetry (the SA baseline). The
    /// per-episode speed metric the parallel rollout engine targets.
    pub episodes_per_s: Option<f64>,
}

/// The aggregated result of one campaign; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The spec's systems axis (cloned so the report is self-contained and
    /// can render placement documents).
    pub systems: Vec<ChipletSystem>,
    /// Every completed run in grid order. Failed grid cells are absent here
    /// and present in [`failures`](Self::failures); each record's
    /// [`index`](RunRecord::index) ties it back to the grid.
    pub runs: Vec<RunRecord>,
    /// Every failed run in grid order. Empty when the whole grid completed.
    pub failures: Vec<RunFailure>,
    /// Per-(system, method) summaries in grid order. A cell whose runs all
    /// failed has no summary.
    pub cells: Vec<CellSummary>,
    /// Wall-clock of the whole campaign, prewarm and aggregation included.
    pub wall_clock: Duration,
    /// Worker threads the campaign ran with.
    pub parallelism: usize,
    /// Runs reconstructed from a streaming sink's prior records instead of
    /// executed (zero for a fresh campaign).
    pub resumed_runs: usize,
    /// Scheduler-utilisation telemetry for the runs this execution actually
    /// performed.
    pub scheduler: SchedulerTelemetry,
    /// The shared characterisation cache's telemetry delta for this
    /// campaign: `misses` counts characterisations actually performed —
    /// with a warm cache it is zero, and it never exceeds the number of
    /// distinct package configurations in the grid.
    pub cache: ThermalCacheStats,
}

impl CampaignReport {
    /// The best-of-seeds outcome of a (system, method) cell, if present.
    pub fn best_outcome(&self, system: &str, method: &str) -> Option<&FloorplanOutcome> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.method == method)
            .map(|c| &self.runs[c.best_run].outcome)
    }

    /// The cell summary of a (system, method) pair, if present.
    pub fn cell(&self, system: &str, method: &str) -> Option<&CellSummary> {
        self.cells
            .iter()
            .find(|c| c.system == system && c.method == method)
    }
}

fn indent(block: &str, spaces: usize) -> String {
    let pad = " ".repeat(spaces);
    block
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i == 0 {
                line.to_string()
            } else {
                format!("{pad}{line}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn cell_json(report: &CampaignReport, cell: &CellSummary) -> String {
    let best = &report.runs[cell.best_run];
    let seeds = cell
        .seeds
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let fields = format!(
        "\"system\": \"{}\",\n\
         \"method\": \"{}\",\n\
         \"seeds\": [{}],\n\
         \"best_seed\": {},\n\
         \"mean_reward\": {},\n\
         \"min_reward\": {},\n\
         \"max_reward\": {},\n\
         \"total_runtime_s\": {},\n\
         \"evaluations\": {},\n\
         \"full_evals\": {},\n\
         \"incremental_evals\": {},\n\
         \"mean_eval_us\": {},\n\
         \"episodes_per_s\": {},\n\
         \"best\": {}",
        json_escape(&cell.system),
        json_escape(&cell.method),
        seeds,
        best.seed,
        json_num(cell.mean_reward),
        json_num(cell.min_reward),
        json_num(cell.max_reward),
        json_num(cell.total_runtime.as_secs_f64()),
        cell.eval_counts.total(),
        cell.eval_counts.full,
        cell.eval_counts.incremental,
        json_num(cell.mean_eval_time.as_secs_f64() * 1e6),
        cell.episodes_per_s.map_or("null".to_string(), json_num),
        indent(
            &outcome_json(&report.systems[cell.system_index], &best.outcome),
            0
        ),
    );
    format!("{{\n  {}\n}}", indent(&fields, 2))
}

fn run_json(run: &RunRecord) -> String {
    format!(
        "{{ \"index\": {}, \"system\": \"{}\", \"method\": \"{}\", \"seed\": {}, \"reward\": {}, \"wirelength_mm\": {}, \"max_temperature_c\": {}, \"evaluations\": {}, \"eval_mode\": \"{}\", \"full_evals\": {}, \"incremental_evals\": {}, \"runtime_s\": {}, \"cache_hits\": {}, \"cache_misses\": {} }}",
        run.index,
        json_escape(&run.system),
        json_escape(&run.method),
        run.seed,
        json_num(run.outcome.breakdown.reward),
        json_num(run.outcome.breakdown.wirelength_mm),
        json_num(run.outcome.breakdown.max_temperature_c),
        run.outcome.evaluations,
        run.outcome.evaluation.mode.label(),
        run.outcome.evaluation.counts.full,
        run.outcome.evaluation.counts.incremental,
        json_num(run.outcome.runtime.as_secs_f64()),
        run.outcome.thermal_prep.cache_hits,
        run.outcome.thermal_prep.cache_misses,
    )
}

fn failure_json(failure: &RunFailure) -> String {
    format!(
        "{{ \"index\": {}, \"system\": \"{}\", \"system_index\": {}, \"method\": \"{}\", \"seed\": {}, \"error\": \"{}\" }}",
        failure.index,
        json_escape(&failure.system),
        failure.system_index,
        json_escape(&failure.method),
        failure.seed,
        json_escape(&failure.error.to_string()),
    )
}

fn scheduler_json(scheduler: &SchedulerTelemetry) -> String {
    let workers = array_json(
        scheduler
            .workers
            .iter()
            .enumerate()
            .map(|(worker, telemetry)| {
                format!(
                    "{{ \"worker\": {}, \"busy_s\": {}, \"executed\": {} }}",
                    worker,
                    json_num(telemetry.busy.as_secs_f64()),
                    telemetry.runs,
                )
            })
            .collect(),
    );
    let drain = array_json(
        scheduler
            .drain
            .iter()
            .map(|event| {
                format!(
                    "{{ \"index\": {}, \"worker\": {}, \"started_s\": {}, \"finished_s\": {} }}",
                    event.index,
                    event.worker,
                    json_num(event.started.as_secs_f64()),
                    json_num(event.finished.as_secs_f64()),
                )
            })
            .collect(),
    );
    let fields = format!("\"workers\": {workers},\n\"drain\": {drain}");
    format!("{{\n  {}\n}}", indent(&fields, 2))
}

fn array_json(items: Vec<String>) -> String {
    if items.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n  {}\n]", indent(&items.join(",\n"), 2))
    }
}

/// Renders a campaign report as the documented campaign document.
pub fn campaign_json(report: &CampaignReport) -> String {
    let cells = array_json(
        report
            .cells
            .iter()
            .map(|cell| cell_json(report, cell))
            .collect(),
    );
    let runs = array_json(report.runs.iter().map(run_json).collect());
    let failures = array_json(report.failures.iter().map(failure_json).collect());
    let fields = format!(
        "\"schema\": \"{}\",\n\
         \"parallelism\": {},\n\
         \"resumed_runs\": {},\n\
         \"wall_clock_s\": {},\n\
         \"cache\": {{ \"hits\": {}, \"misses\": {}, \"characterization_s\": {} }},\n\
         \"scheduler\": {},\n\
         \"cells\": {},\n\
         \"runs\": {},\n\
         \"failures\": {}",
        CAMPAIGN_SCHEMA,
        report.parallelism,
        report.resumed_runs,
        json_num(report.wall_clock.as_secs_f64()),
        report.cache.hits,
        report.cache.misses,
        json_num(report.cache.characterization_time.as_secs_f64()),
        indent(&scheduler_json(&report.scheduler), 2),
        cells,
        runs,
        failures,
    );
    format!("{{\n  {}\n}}", indent(&fields, 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CampaignEngine, CampaignMethod, CampaignSpec};
    use rlp_chiplet::{Chiplet, ChipletSystem, Net};
    use rlp_thermal::{ThermalBackend, ThermalConfig};
    use rlplanner::report::OUTCOME_SCHEMA;
    use rlplanner::{Budget, Method};

    fn tiny_system(name: &str) -> ChipletSystem {
        let mut sys = ChipletSystem::new(name, 24.0, 24.0);
        let a = sys.add_chiplet(Chiplet::new("a", 6.0, 6.0, 20.0));
        let b = sys.add_chiplet(Chiplet::new("b", 5.0, 5.0, 10.0));
        sys.add_net(Net::new(a, b, 32));
        sys
    }

    fn tiny_report() -> CampaignReport {
        let spec = CampaignSpec::builder()
            .system(tiny_system("alpha"))
            .method(CampaignMethod::new(
                "sa",
                Method::sa(),
                ThermalBackend::Grid {
                    config: ThermalConfig::with_grid(8, 8),
                },
            ))
            .seeds([1, 2])
            .budget(Budget::Evaluations(8))
            .build()
            .unwrap();
        CampaignEngine::new().run(&spec).unwrap()
    }

    #[test]
    fn campaign_document_has_the_documented_shape_and_order() {
        let report = tiny_report();
        let json = campaign_json(&report);
        let keys = [
            "\"schema\"",
            "\"parallelism\"",
            "\"resumed_runs\"",
            "\"wall_clock_s\"",
            "\"cache\"",
            "\"scheduler\"",
            "\"cells\"",
            "\"runs\"",
            "\"failures\"",
        ];
        let positions: Vec<usize> = keys
            .iter()
            .map(|k| json.find(k).unwrap_or_else(|| panic!("missing key {k}")))
            .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "top-level keys out of order"
        );
        assert!(json.starts_with(&format!("{{\n  \"schema\": \"{CAMPAIGN_SCHEMA}\"")));
        // Each cell embeds the full outcome document of its best run.
        assert!(json.contains(&format!("\"schema\": \"{OUTCOME_SCHEMA}\"")));
        assert!(json.contains("\"best_seed\""));
        assert!(json.contains("\"cache_hits\""));
        // Evaluation telemetry is aggregated per cell and per run.
        assert!(json.contains("\"mean_eval_us\""));
        assert!(json.contains("\"full_evals\""));
        assert!(json.contains("\"incremental_evals\""));
        // The grid backend has no incremental state, so these SA runs
        // report full evaluation.
        assert!(json.contains("\"eval_mode\": \"full\""));
        assert_eq!(json.matches("\"seed\": ").count(), 2 + 2); // runs + embedded manifests
                                                               // An all-green campaign still renders the failure and scheduler
                                                               // sections (empty / populated respectively).
        assert!(json.contains("\"failures\": []"));
        assert!(json.contains("\"busy_s\""));
        assert!(json.contains("\"drain\""));
    }

    #[test]
    fn scheduler_telemetry_accounts_for_every_executed_run() {
        let report = tiny_report();
        assert_eq!(report.resumed_runs, 0);
        assert!(report.failures.is_empty());
        assert!(!report.scheduler.workers.is_empty());
        let executed: usize = report.scheduler.workers.iter().map(|w| w.runs).sum();
        assert_eq!(executed, report.runs.len());
        assert_eq!(report.scheduler.drain.len(), report.runs.len());
        for event in &report.scheduler.drain {
            assert!(event.index < report.runs.len());
            assert!(event.worker < report.scheduler.workers.len());
            assert!(event.finished >= event.started);
        }
        // Run records carry their grid index; a single-cell serial campaign
        // drains in grid order.
        let indices: Vec<usize> = report.runs.iter().map(|r| r.index).collect();
        assert_eq!(indices, vec![0, 1]);
    }

    #[test]
    fn document_render_is_deterministic() {
        let report = tiny_report();
        assert_eq!(campaign_json(&report), campaign_json(&report));
    }

    #[test]
    fn best_outcome_and_cell_lookups_work() {
        let report = tiny_report();
        let cell = report.cell("alpha", "sa").unwrap();
        assert_eq!(cell.seeds, vec![1, 2]);
        assert!(cell.min_reward <= cell.max_reward);
        assert!(cell.mean_reward <= cell.max_reward && cell.mean_reward >= cell.min_reward);
        let best = report.best_outcome("alpha", "sa").unwrap();
        assert_eq!(best.breakdown.reward, cell.max_reward);
        assert!(report.best_outcome("alpha", "nope").is_none());
    }

    #[test]
    fn cells_aggregate_evaluation_telemetry() {
        let report = tiny_report();
        let cell = report.cell("alpha", "sa").unwrap();
        let total: usize = report.runs.iter().map(|r| r.outcome.evaluations).sum();
        assert_eq!(cell.eval_counts.total(), total);
        assert!(cell.eval_counts.total() > 0);
        assert!(cell.mean_eval_time > Duration::ZERO);
        let expected = cell.total_runtime.as_secs_f64() / cell.eval_counts.total() as f64;
        assert!((cell.mean_eval_time.as_secs_f64() - expected).abs() < 1e-9);
    }
}
