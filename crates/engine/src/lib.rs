//! Campaign engine: parallel batch runs of floorplanning requests with a
//! shared thermal-characterisation cache.
//!
//! The paper's headline results (Tables I–III) are not single runs but
//! *campaigns* — many methods × systems × seeds, every run needing a
//! characterised fast thermal model. Solving each
//! [`rlplanner::FloorplanRequest`] in isolation re-characterises that model
//! per run, even though characterisation depends only on the package
//! configuration. This crate amortises the expensive step and executes the
//! grid concurrently:
//!
//! * [`CampaignSpec`] declares the sweep — [`CampaignMethod`] columns
//!   (method + backend + optional budget override), a systems axis (the
//!   standard benchmarks, [`rlp_benchmarks::synthetic_cases`], or any
//!   [`rlp_benchmarks::SyntheticConfig`] sweep) and a seeds axis — plus a
//!   parallelism level.
//! * [`CampaignEngine`] drains the grid with a `std::thread::scope` worker
//!   pool. Every run's analyzer is served from a shared
//!   [`rlp_thermal::ThermalModelCache`], so each distinct package
//!   configuration is characterised exactly once, and results are stored
//!   by grid index so a parallel campaign yields outcomes byte-identical
//!   to a serial one under fixed seeds (wall-clock budgets being the
//!   documented exception).
//! * [`CampaignReport`] aggregates the outcomes — best-of-seeds run per
//!   (system, method) cell, mean/min/max reward, wall-clock, cache and
//!   scheduler telemetry — and [`report::campaign_json`] renders it as the
//!   documented `rlplanner.campaign/v1` JSON document.
//!
//! Campaigns are **fail-soft, streaming and resumable**: a failed solve
//! becomes an entry in [`CampaignReport::failures`] instead of discarding
//! every completed cell; [`CampaignEngine::run_streamed`] emits each
//! finished run as one `rlplanner.campaign-run/v1` JSONL record through a
//! pluggable [`RunSink`] (a file-backed [`JsonlSink`] behind the CLI's
//! `--stream` flag), flushed per record; and reopening a streamed file
//! resumes the campaign, re-executing only the grid cells the file does
//! not already hold. See [`sink`] and [`runner`].
//!
//! # Example
//!
//! A 2-method × 1-system × 2-seed campaign on two worker threads:
//!
//! ```
//! use rlp_engine::{CampaignEngine, CampaignMethod, CampaignSpec};
//! use rlp_thermal::{ThermalBackend, ThermalConfig};
//! use rlplanner::{Budget, Method};
//! use rlp_chiplet::{Chiplet, ChipletSystem, Net};
//!
//! let mut system = ChipletSystem::new("demo", 24.0, 24.0);
//! let a = system.add_chiplet(Chiplet::new("a", 6.0, 6.0, 20.0));
//! let b = system.add_chiplet(Chiplet::new("b", 5.0, 5.0, 10.0));
//! system.add_net(Net::new(a, b, 32));
//!
//! let backend = ThermalBackend::Grid {
//!     config: ThermalConfig::with_grid(8, 8),
//! };
//! let spec = CampaignSpec::builder()
//!     .system(system)
//!     .method(CampaignMethod::new("sa", Method::sa(), backend.clone()))
//!     .method(CampaignMethod::new(
//!         "sa-slow-cool",
//!         Method::Sa {
//!             config: rlp_sa::SaConfig {
//!                 cooling_rate: 0.9,
//!                 ..rlp_sa::SaConfig::default()
//!             },
//!         },
//!         backend,
//!     ))
//!     .seeds([7, 8])
//!     .budget(Budget::Evaluations(10))
//!     .parallelism(2)
//!     .build()
//!     .expect("valid spec");
//! let report = CampaignEngine::new().run(&spec).expect("campaign runs");
//! assert_eq!(report.runs.len(), 4);
//! let best = report.best_outcome("demo", "sa").expect("cell exists");
//! assert!(best.placement.is_complete());
//! ```

pub mod report;
pub mod runner;
pub mod sink;
pub mod spec;

pub use report::{
    campaign_json, CampaignReport, CellSummary, DrainEvent, RunFailure, RunRecord,
    SchedulerTelemetry, WorkerTelemetry, CAMPAIGN_SCHEMA,
};
pub use runner::{CampaignEngine, CampaignError};
pub use sink::{JsonlSink, MemorySink, NullSink, RunEvent, RunSink, RUN_RECORD_SCHEMA};
pub use spec::{CampaignMethod, CampaignSpec, CampaignSpecBuilder};
