//! `rlplanner_cli` — run any benchmark system through any of the six
//! methods from the command line, via the unified [`FloorplanRequest`]
//! facade; run whole sweep campaigns through the
//! [`rlp_engine::CampaignEngine`]; or train a generalist policy across
//! the synthetic system distribution.
//!
//! ```text
//! rlplanner_cli <system> <method> [budget] [--train-parallel <n>]
//!               [--warm-start] [--policy <path>] [--save-policy <path>]
//!               [--json] [--log-level <filter>]
//!
//!   <system>   multi-gpu | cpu-dram | ascend910 | case1..case5
//!   <method>   rl | rl-rnd | sa-hotspot | sa-fast | gradient | pretrained
//!   [budget]   candidate floorplans to evaluate: RL training episodes or
//!              SA/gradient objective evaluations (default 100); must be a
//!              positive integer — anything else is a usage error (the
//!              `pretrained` method ignores it: inference is one rollout)
//!   --train-parallel  rollout workers collecting RL training episodes;
//!              parallel collection is trajectory-invariant, so any value
//!              produces the byte-identical result, only faster (default:
//!              the method config's `parallel_envs`, i.e. 1)
//!   --warm-start  seed the SA/RL optimiser with the analytic
//!              gradient-descent presolve instead of a random start (no-op
//!              for the `gradient` method, which IS the presolve engine)
//!   --policy   `rlplanner.policy/v1` file the `pretrained` method solves
//!              with (required by — and only read by — that method)
//!   --save-policy  write the trained policy network to this path after an
//!              `rl`/`rl-rnd` run, for later `pretrained` solves
//!   --json     print the full outcome document (placement, reward
//!              breakdown, telemetry, reproducibility manifest) as JSON
//!              instead of the human-readable summary
//!   --log-level  structured-log filter on stderr
//!              (off|error|warn|info|debug|trace; default off, overrides
//!              the `RLP_LOG` environment variable; valid in every mode —
//!              `RLP_METRICS=1` and `RLP_TRACE=<path>` are also honoured)
//!
//! rlplanner_cli sweep [--systems <s,...>] [--methods <m,...>]
//!                     [--seeds <n,...>] [--budget <n>] [--parallel <n>]
//!                     [--train-parallel <n>] [--warm-start]
//!                     [--policy <path>] [--stream <path>] [--json]
//!
//!   --systems  comma-separated systems axis       (default: case1)
//!   --methods  comma-separated method columns     (default: rl)
//!   --seeds    comma-separated seeds axis         (default: 7)
//!   --budget   candidate floorplans per run       (default: 50)
//!   --parallel worker threads; parallelism never changes outcomes, only
//!              wall-clock                         (default: 1)
//!   --train-parallel  rollout workers inside every RL run; also
//!              outcome-invariant                  (default: 1)
//!   --warm-start  gradient-presolve every run of the grid; unlike the
//!              parallelism knobs this DOES change outcomes, uniformly
//!              across the whole grid               (default: off)
//!   --policy   policy file backing a `pretrained` column in --methods
//!   --stream   append each finished run to <path> as one
//!              `rlplanner.campaign-run/v1` JSONL record, flushed per run.
//!              If <path> already holds records from an interrupted sweep
//!              of the same grid, those runs are loaded instead of
//!              re-executed (resume)
//!   --json     print the campaign document (`rlplanner.campaign/v1`)
//!              instead of the human-readable cell table
//!
//! rlplanner_cli train-generalist --out <path> [--systems <n>]
//!                                [--episodes-per-system <n>] [--seed <n>]
//!
//!   Trains ONE policy sequentially across <n> randomized synthetic
//!   systems (default 8) drawn from `rlp_benchmarks::SyntheticConfig`,
//!   carrying the network weights from system to system, then saves the
//!   result as a `rlplanner.policy/v1` file at --out. The saved policy
//!   drives `pretrained` solves (above) and the `rlp_serve --policy`
//!   daemon; training progress is reported per system on stderr.
//! ```
//!
//! A sweep runs the full systems × methods × seeds grid through one shared
//! thermal-characterisation cache: each distinct package configuration is
//! characterised exactly once, however many runs and threads need it.
//! Sweeps are fail-soft: a run whose solve fails is reported (and exits
//! nonzero) without discarding the completed cells.
//!
//! Without `--json`, the single-run mode prints the reward breakdown on
//! stdout followed by the placement as JSON (the `rlplanner::report`
//! placement document), and the sweep mode prints one summary line per
//! (system, method) cell. Exit codes: 0 on success, 2 on usage errors, 1
//! when a solve fails (single-run) or any sweep run fails.

use rlp_benchmarks::{
    ascend910_system, cpu_dram_system, multi_gpu_system, synthetic_case, SyntheticConfig,
    SyntheticSystemGenerator,
};
use rlp_chiplet::ChipletSystem;
use rlp_engine::{campaign_json, CampaignEngine, CampaignMethod, CampaignSpec, JsonlSink};
use rlp_rl::NullTrainingObserver;
use rlp_sa::SaConfig;
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::report::{outcome_json, placement_json};
use rlplanner::{
    Budget, FloorplanRequest, Method, PolicyFile, RewardConfig, RlPlanner, RlPlannerConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rlplanner_cli <multi-gpu|cpu-dram|ascend910|case1..case5> \
         <rl|rl-rnd|sa-hotspot|sa-fast|gradient|pretrained> [budget] \
         [--train-parallel <n>] [--warm-start] [--policy <path>] \
         [--save-policy <path>] [--json] [--log-level <filter>]\n\
         \x20      rlplanner_cli sweep [--systems <s,...>] [--methods <m,...>] \
         [--seeds <n,...>] [--budget <n>] [--parallel <n>] \
         [--train-parallel <n>] [--warm-start] [--policy <path>] \
         [--stream <path>] [--json] [--log-level <filter>]\n\
         \x20      rlplanner_cli train-generalist --out <path> [--systems <n>] \
         [--episodes-per-system <n>] [--seed <n>] [--log-level <filter>]"
    );
    ExitCode::from(2)
}

fn load_system(name: &str) -> Option<ChipletSystem> {
    match name {
        "multi-gpu" => Some(multi_gpu_system()),
        "cpu-dram" => Some(cpu_dram_system()),
        "ascend910" => Some(ascend910_system()),
        _ => name
            .strip_prefix("case")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| (1..=5).contains(n))
            .map(synthetic_case),
    }
}

/// Maps a CLI method name to the request's method and thermal backend.
/// The `pretrained` method needs the `--policy` path and is the only one
/// that reads it.
fn load_method(name: &str, policy: Option<&str>) -> Result<(Method, ThermalBackend), String> {
    let thermal_config = ThermalConfig::with_grid(32, 32);
    let fast = ThermalBackend::Fast {
        config: thermal_config.clone(),
        characterization: CharacterizationOptions::default(),
    };
    let sa = Method::Sa {
        config: SaConfig {
            final_temperature: 1e-6,
            ..SaConfig::default()
        },
    };
    match name {
        "rl" => Ok((Method::rl(), fast)),
        "rl-rnd" => Ok((Method::rl_rnd(), fast)),
        "sa-fast" => Ok((sa, fast)),
        "sa-hotspot" => Ok((
            sa,
            ThermalBackend::Grid {
                config: thermal_config,
            },
        )),
        // The analytic engine needs gradients, which only the fast
        // (characterised) backend provides.
        "gradient" => Ok((Method::gradient(), fast)),
        "pretrained" => {
            let path =
                policy.ok_or_else(|| "method `pretrained` needs --policy <path>".to_string())?;
            Ok((Method::pretrained(path), fast))
        }
        other => Err(format!("unknown method `{other}`")),
    }
}

/// Parsed `--flag value` / `--flag=value` sweep options.
struct SweepArgs {
    systems: Vec<String>,
    methods: Vec<String>,
    seeds: Vec<u64>,
    budget: usize,
    parallel: usize,
    train_parallel: Option<usize>,
    warm_start: bool,
    stream: Option<String>,
    policy: Option<String>,
    json: bool,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, String> {
    let mut parsed = SweepArgs {
        systems: vec!["case1".to_string()],
        methods: vec!["rl".to_string()],
        seeds: vec![7],
        budget: 50,
        parallel: 1,
        train_parallel: None,
        warm_start: false,
        stream: None,
        policy: None,
        json: false,
    };
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        if flag == "--json" || flag == "--warm-start" {
            if inline.is_some() {
                return Err(format!("{flag} takes no value"));
            }
            if flag == "--json" {
                parsed.json = true;
            } else {
                parsed.warm_start = true;
            }
            continue;
        }
        let value = match inline {
            Some(value) => value,
            None => iter
                .next()
                .ok_or_else(|| format!("flag `{flag}` needs a value"))?
                .clone(),
        };
        match flag {
            "--systems" => parsed.systems = value.split(',').map(str::to_string).collect(),
            "--methods" => parsed.methods = value.split(',').map(str::to_string).collect(),
            "--seeds" => {
                parsed.seeds = value
                    .split(',')
                    .map(|s| {
                        s.parse::<u64>()
                            .map_err(|_| format!("invalid seed `{s}`: expected an integer"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--budget" => {
                parsed.budget =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("invalid budget `{value}`: expected a positive integer")
                        })?;
            }
            "--parallel" => {
                parsed.parallel =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("invalid parallelism `{value}`: expected a positive integer")
                        })?;
            }
            "--train-parallel" => {
                parsed.train_parallel = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!(
                                "invalid rollout parallelism `{value}`: expected a positive integer"
                            )
                        })?,
                );
            }
            "--stream" => {
                if value.is_empty() {
                    return Err("--stream needs a non-empty path".to_string());
                }
                parsed.stream = Some(value);
            }
            "--policy" => {
                if value.is_empty() {
                    return Err("--policy needs a non-empty path".to_string());
                }
                parsed.policy = Some(value);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run_sweep(args: &[String]) -> ExitCode {
    let parsed = match parse_sweep_args(args) {
        Ok(parsed) => parsed,
        Err(reason) => {
            eprintln!("{reason}");
            return usage();
        }
    };
    let mut spec = CampaignSpec::builder()
        .budget(Budget::Evaluations(parsed.budget))
        .parallelism(parsed.parallel)
        .seeds(parsed.seeds.iter().copied());
    if let Some(train_parallel) = parsed.train_parallel {
        spec = spec.train_parallel(train_parallel);
    }
    if parsed.warm_start {
        spec = spec.warm_start(true);
    }
    for name in &parsed.systems {
        let Some(system) = load_system(name) else {
            eprintln!("unknown system `{name}`");
            return usage();
        };
        spec = spec.system(system);
    }
    for name in &parsed.methods {
        let (method, thermal) = match load_method(name, parsed.policy.as_deref()) {
            Ok(loaded) => loaded,
            Err(reason) => {
                eprintln!("{reason}");
                return usage();
            }
        };
        spec = spec.method(CampaignMethod::new(name.clone(), method, thermal));
    }
    let spec = match spec.build() {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("invalid sweep: {err}");
            return ExitCode::from(2);
        }
    };
    let engine = CampaignEngine::new();
    let report = if let Some(path) = &parsed.stream {
        let mut sink = match JsonlSink::open(path) {
            Ok(sink) => sink,
            Err(err) => {
                eprintln!("cannot open stream file `{path}`: {err}");
                return ExitCode::FAILURE;
            }
        };
        if sink.prior_len() > 0 {
            eprintln!(
                "resuming from {} record(s) already in `{path}`",
                sink.prior_len()
            );
        }
        match engine.run_streamed(&spec, &mut sink) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("sweep failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match engine.run(&spec) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("sweep failed: {err}");
                return ExitCode::FAILURE;
            }
        }
    };
    if parsed.json {
        println!("{}", campaign_json(&report));
    } else {
        eprintln!(
            "{} runs ({} resumed) on {} worker(s) in {:.2?}; cache: {} hit(s), {} characterisation(s) ({:.2?})",
            report.runs.len() + report.failures.len(),
            report.resumed_runs,
            report.parallelism,
            report.wall_clock,
            report.cache.hits,
            report.cache.misses,
            report.cache.characterization_time,
        );
        println!(
            "{:<12}{:<12}{:>8}{:>12}{:>12}{:>12}{:>12}{:>10}{:>12}{:>10}{:>14}",
            "system",
            "method",
            "seeds",
            "best",
            "mean",
            "min",
            "best seed",
            "evals",
            "us/eval",
            "eps/s",
            "eval engine"
        );
        for cell in &report.cells {
            let episodes_per_s = cell
                .episodes_per_s
                .map_or_else(|| "-".to_string(), |v| format!("{v:.1}"));
            println!(
                "{:<12}{:<12}{:>8}{:>12.4}{:>12.4}{:>12.4}{:>12}{:>10}{:>12.1}{:>10}{:>14}",
                cell.system,
                cell.method,
                cell.seeds.len(),
                cell.max_reward,
                cell.mean_reward,
                cell.min_reward,
                report.runs[cell.best_run].seed,
                cell.eval_counts.total(),
                cell.mean_eval_time.as_secs_f64() * 1e6,
                episodes_per_s,
                cell.eval_counts.mode().label(),
            );
        }
    }
    // Fail-soft: completed cells were reported above (and streamed), but a
    // sweep with failed runs still exits nonzero.
    if !report.failures.is_empty() {
        eprintln!("{} run(s) failed:", report.failures.len());
        for failure in &report.failures {
            eprintln!(
                "  run {} `{}` on `{}` (seed {}): {}",
                failure.index, failure.method, failure.system, failure.seed, failure.error
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parsed `train-generalist` options.
struct GeneralistArgs {
    out: String,
    systems: usize,
    episodes_per_system: usize,
    seed: u64,
}

fn parse_generalist_args(args: &[String]) -> Result<GeneralistArgs, String> {
    let mut out = None;
    let mut parsed = GeneralistArgs {
        out: String::new(),
        systems: 8,
        episodes_per_system: 60,
        seed: 7,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (arg.as_str(), None),
        };
        let value = match inline {
            Some(value) => value,
            None => iter
                .next()
                .ok_or_else(|| format!("flag `{flag}` needs a value"))?
                .clone(),
        };
        match flag {
            "--out" => {
                if value.is_empty() {
                    return Err("--out needs a non-empty path".to_string());
                }
                out = Some(value);
            }
            "--systems" => {
                parsed.systems =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| {
                            format!("invalid system count `{value}`: expected a positive integer")
                        })?;
            }
            "--episodes-per-system" => {
                parsed.episodes_per_system = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        format!("invalid episode count `{value}`: expected a positive integer")
                    })?;
            }
            "--seed" => {
                parsed.seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("invalid seed `{value}`: expected an integer"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    parsed.out = out.ok_or_else(|| "train-generalist needs --out <path>".to_string())?;
    Ok(parsed)
}

/// Trains one policy across the randomized synthetic system distribution
/// and saves it as a `rlplanner.policy/v1` file: the "train once" half of
/// train once, serve forever. The weights carry from system to system via
/// the in-memory policy snapshot (all systems share the default 16×16
/// placement grid, so the network shapes are equal), and the saved file
/// records the distribution provenance in its metadata.
fn run_train_generalist(args: &[String]) -> ExitCode {
    let parsed = match parse_generalist_args(args) {
        Ok(parsed) => parsed,
        Err(reason) => {
            eprintln!("{reason}");
            return usage();
        }
    };
    let systems = SyntheticSystemGenerator::new(SyntheticConfig::default(), parsed.seed)
        .generate_batch(parsed.systems);
    let thermal = ThermalBackend::Fast {
        config: ThermalConfig::with_grid(32, 32),
        characterization: CharacterizationOptions::default(),
    };
    let mut snapshot: Option<PolicyFile> = None;
    for (index, system) in systems.into_iter().enumerate() {
        let name = system.name().to_string();
        let chiplets = system.chiplet_count();
        let (analyzer, _prep) = match thermal.build_prepared(&system) {
            Ok(built) => built,
            Err(err) => {
                eprintln!("thermal backend failed on `{name}`: {err}");
                return ExitCode::FAILURE;
            }
        };
        let config = RlPlannerConfig {
            episodes: parsed.episodes_per_system,
            // Each system trains on its own deterministic stream; the
            // carried weights are the only cross-system state.
            seed: parsed.seed.wrapping_add(index as u64),
            ..RlPlannerConfig::default()
        };
        let mut planner = match RlPlanner::new(system, analyzer, RewardConfig::default(), config) {
            Ok(planner) => planner,
            Err(err) => {
                eprintln!("invalid training configuration on `{name}`: {err}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(file) = &snapshot {
            if let Err(err) = planner.import_policy(file) {
                eprintln!("cannot carry weights into `{name}`: {err}");
                return ExitCode::FAILURE;
            }
        }
        match planner.train_observed(&mut NullTrainingObserver) {
            Ok(result) => {
                eprintln!(
                    "[{}/{}] {name}: {chiplets} chiplets, {} episodes, best reward {:.4}",
                    index + 1,
                    parsed.systems,
                    result.episodes_run,
                    result.best_breakdown.reward,
                );
            }
            Err(err) => {
                eprintln!("training stalled on `{name}`: {err}");
                return ExitCode::FAILURE;
            }
        }
        snapshot = Some(planner.export_policy(vec![
            ("trained.distribution".to_string(), "synthetic".to_string()),
            ("trained.systems".to_string(), (index + 1).to_string()),
            (
                "trained.episodes_per_system".to_string(),
                parsed.episodes_per_system.to_string(),
            ),
            ("trained.seed".to_string(), parsed.seed.to_string()),
        ]));
    }
    let snapshot = snapshot.expect("at least one system trains");
    if let Err(err) = snapshot.save(&parsed.out) {
        eprintln!("cannot save policy to `{}`: {err}", parsed.out);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "saved generalist policy to `{}` (checksum {:#018x})",
        parsed.out,
        snapshot.checksum(),
    );
    ExitCode::SUCCESS
}

/// Strips a `--log-level <filter>` / `--log-level=<filter>` flag from
/// `args` and applies it, overriding whatever `RLP_LOG` set. Handled
/// before mode dispatch so the flag works for single runs and sweeps
/// alike.
fn apply_log_level_flag(args: &mut Vec<String>) -> Result<(), String> {
    let Some(index) = args
        .iter()
        .position(|a| a == "--log-level" || a.starts_with("--log-level="))
    else {
        return Ok(());
    };
    let raw = args.remove(index);
    let value = match raw.strip_prefix("--log-level=") {
        Some(inline) => inline.to_string(),
        None => {
            if index >= args.len() {
                return Err("--log-level needs a value".to_string());
            }
            args.remove(index)
        }
    };
    let filter =
        rlp_obs::Level::parse_filter(&value).map_err(|e| format!("invalid --log-level: {e}"))?;
    rlp_obs::set_max_level(filter);
    Ok(())
}

fn main() -> ExitCode {
    // Environment first (`RLP_LOG`, `RLP_METRICS`, `RLP_TRACE`), then an
    // explicit `--log-level` flag overrides the environment. The CLI
    // defaults to everything off: solves stay silent unless asked.
    if let Err(e) = rlp_obs::init_from_env() {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = apply_log_level_flag(&mut args) {
        eprintln!("{e}");
        return usage();
    }
    if args.first().map(String::as_str) == Some("sweep") {
        return run_sweep(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("train-generalist") {
        return run_train_generalist(&args[1..]);
    }

    let mut json = false;
    let mut warm_start = false;
    let mut train_parallel: Option<usize> = None;
    let mut policy: Option<String> = None;
    let mut save_policy: Option<String> = None;
    let mut positional: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(rest) = arg.strip_prefix("--") else {
            positional.push(arg);
            continue;
        };
        let (flag, inline) = match rest.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (rest, None),
        };
        match flag {
            "json" | "warm-start" => {
                if inline.is_some() {
                    eprintln!("--{flag} takes no value");
                    return usage();
                }
                if flag == "json" {
                    json = true;
                } else {
                    warm_start = true;
                }
            }
            "train-parallel" => {
                let value = match inline.or_else(|| iter.next().cloned()) {
                    Some(value) => value,
                    None => {
                        eprintln!("--train-parallel needs a value");
                        return usage();
                    }
                };
                train_parallel = match value.parse::<usize>() {
                    Ok(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!(
                            "invalid rollout parallelism `{value}`: expected a positive integer"
                        );
                        return usage();
                    }
                };
            }
            "policy" | "save-policy" => {
                let value = match inline.or_else(|| iter.next().cloned()) {
                    Some(value) if !value.is_empty() => value,
                    _ => {
                        eprintln!("--{flag} needs a non-empty path");
                        return usage();
                    }
                };
                if flag == "policy" {
                    policy = Some(value);
                } else {
                    save_policy = Some(value);
                }
            }
            other => {
                eprintln!("unknown flag `--{other}`");
                return usage();
            }
        }
    }
    if !(2..=3).contains(&positional.len()) {
        return usage();
    }

    let Some(system) = load_system(positional[0]) else {
        eprintln!("unknown system `{}`", positional[0]);
        return usage();
    };
    let (method, thermal) = match load_method(positional[1], policy.as_deref()) {
        Ok(loaded) => loaded,
        Err(reason) => {
            eprintln!("{reason}");
            return usage();
        }
    };
    // Saving weights only makes sense for a run that trains them.
    if save_policy.is_some() && !matches!(method, Method::Rl { .. } | Method::RlRnd { .. }) {
        eprintln!("--save-policy needs an RL method (rl or rl-rnd)");
        return usage();
    }
    let budget = match positional.get(2) {
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("invalid budget `{raw}`: expected a positive integer");
                return usage();
            }
        },
        None => 100,
    };

    let mut builder = FloorplanRequest::builder()
        .system(system)
        .method(method)
        .thermal(thermal)
        .budget(Budget::Evaluations(budget));
    if let Some(train_parallel) = train_parallel {
        builder = builder.parallel_envs(train_parallel);
    }
    if let Some(path) = save_policy {
        builder = builder.save_policy(path);
    }
    builder = builder.warm_start(warm_start);
    let request = match builder.build() {
        Ok(request) => request,
        Err(err) => {
            eprintln!("invalid request: {err}");
            return ExitCode::from(2);
        }
    };

    let outcome = match request.solve() {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("solve failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", outcome_json(request.system(), &outcome));
    } else {
        eprintln!(
            "{}: {} candidate floorplans in {:.2?}",
            request.method().display_name(),
            outcome.evaluations,
            outcome.runtime
        );
        println!(
            "reward {:.4} | wirelength {:.0} mm | peak temperature {:.2} C",
            outcome.breakdown.reward,
            outcome.breakdown.wirelength_mm,
            outcome.breakdown.max_temperature_c
        );
        println!("{}", placement_json(request.system(), &outcome.placement));
    }
    ExitCode::SUCCESS
}
