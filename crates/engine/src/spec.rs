//! Declarative description of a campaign: a sweep grid of runs.
//!
//! A [`CampaignSpec`] expands a small set of axes — [`CampaignMethod`]s
//! (method + thermal backend + optional budget override), systems and seeds
//! — into the full cross product of [`FloorplanRequest`]s the paper's
//! tables are made of, in a deterministic order. The spec also carries the
//! execution parameters that do *not* affect results (the parallelism
//! level), so a parallel campaign is byte-identical to a serial one under
//! fixed seeds.

use rlp_chiplet::ChipletSystem;
use rlp_thermal::ThermalBackend;
use rlplanner::{Budget, ConfigError, FloorplanRequest, Method, PrebuiltThermal};

/// One method column of a campaign: an optimisation [`Method`] paired with
/// the [`ThermalBackend`] it runs against, a stable label naming the column
/// in reports, and an optional budget override for this column only (the
/// paper gives its SA baselines a different budget than the RL runs).
#[derive(Debug, Clone)]
pub struct CampaignMethod {
    label: String,
    method: Method,
    thermal: ThermalBackend,
    budget: Option<Budget>,
}

impl CampaignMethod {
    /// Creates a column with the spec-level default budget.
    pub fn new(label: impl Into<String>, method: Method, thermal: ThermalBackend) -> Self {
        Self {
            label: label.into(),
            method,
            thermal,
            budget: None,
        }
    }

    /// Overrides the campaign's default budget for this column.
    #[must_use]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The column's report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The optimisation method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The thermal backend description.
    pub fn thermal(&self) -> &ThermalBackend {
        &self.thermal
    }

    /// The per-column budget override, if any.
    pub fn budget(&self) -> Option<Budget> {
        self.budget
    }
}

/// One run of the expanded grid, identified by its axis indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunSpec {
    /// Index into [`CampaignSpec::systems`].
    pub system: usize,
    /// Index into [`CampaignSpec::methods`].
    pub method: usize,
    /// Seed override for this run (`None` leaves the method config's seed).
    pub seed: Option<u64>,
}

/// A validated sweep grid; build one with [`CampaignSpec::builder`] and run
/// it with [`crate::CampaignEngine::run`].
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    methods: Vec<CampaignMethod>,
    systems: Vec<ChipletSystem>,
    seeds: Vec<u64>,
    budget: Option<Budget>,
    parallelism: usize,
    train_parallel: Option<usize>,
    warm_start: bool,
}

impl CampaignSpec {
    /// Starts building a spec.
    pub fn builder() -> CampaignSpecBuilder {
        CampaignSpecBuilder::default()
    }

    /// The method columns.
    pub fn methods(&self) -> &[CampaignMethod] {
        &self.methods
    }

    /// The systems axis.
    pub fn systems(&self) -> &[ChipletSystem] {
        &self.systems
    }

    /// The seeds axis (empty means one run per cell with the method
    /// config's own seed).
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// The default budget applied to columns without their own override.
    pub fn budget(&self) -> Option<Budget> {
        self.budget
    }

    /// Number of worker threads the engine uses for this campaign.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Rollout-parallelism override applied to every RL run of the grid
    /// (`None` leaves each method config's own `parallel_envs`). Like run
    /// parallelism, it never changes outcomes, only wall-clock.
    pub fn train_parallel(&self) -> Option<usize> {
        self.train_parallel
    }

    /// Whether every run of the grid seeds its optimiser with the
    /// gradient-descent presolve
    /// (see [`rlplanner::FloorplanRequestBuilder::warm_start`]).
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// Total number of runs the grid expands to.
    pub fn run_count(&self) -> usize {
        self.systems.len() * self.methods.len() * self.seeds.len().max(1)
    }

    /// The grid in its canonical order: systems outermost, then methods,
    /// then seeds. Reports aggregate and emit in exactly this order, which
    /// is also the order a serial engine executes.
    pub(crate) fn expand(&self) -> Vec<RunSpec> {
        let mut runs = Vec::with_capacity(self.run_count());
        for system in 0..self.systems.len() {
            for method in 0..self.methods.len() {
                if self.seeds.is_empty() {
                    runs.push(RunSpec {
                        system,
                        method,
                        seed: None,
                    });
                } else {
                    for &seed in &self.seeds {
                        runs.push(RunSpec {
                            system,
                            method,
                            seed: Some(seed),
                        });
                    }
                }
            }
        }
        runs
    }

    /// Builds the request for one run of the grid, optionally carrying a
    /// prebuilt analyzer (the engine's cache-served path).
    pub(crate) fn request(
        &self,
        run: RunSpec,
        prebuilt: Option<PrebuiltThermal>,
    ) -> Result<FloorplanRequest, ConfigError> {
        let method = &self.methods[run.method];
        let mut builder = FloorplanRequest::builder()
            .system(self.systems[run.system].clone())
            .method(method.method.clone())
            .thermal(method.thermal.clone());
        if let Some(prebuilt) = prebuilt {
            builder = builder.prebuilt_thermal(prebuilt);
        }
        if let Some(budget) = method.budget.or(self.budget) {
            builder = builder.budget(budget);
        }
        if let Some(seed) = run.seed {
            builder = builder.seed(seed);
        }
        if let Some(train_parallel) = self.train_parallel {
            builder = builder.parallel_envs(train_parallel);
        }
        builder = builder.warm_start(self.warm_start);
        builder.build()
    }
}

/// Builder for [`CampaignSpec`].
#[derive(Debug, Clone)]
pub struct CampaignSpecBuilder {
    methods: Vec<CampaignMethod>,
    systems: Vec<ChipletSystem>,
    seeds: Vec<u64>,
    budget: Option<Budget>,
    parallelism: usize,
    train_parallel: Option<usize>,
    warm_start: bool,
}

impl Default for CampaignSpecBuilder {
    fn default() -> Self {
        Self {
            methods: Vec::new(),
            systems: Vec::new(),
            seeds: Vec::new(),
            budget: None,
            parallelism: 1,
            train_parallel: None,
            warm_start: false,
        }
    }
}

impl CampaignSpecBuilder {
    /// Adds one method column.
    #[must_use]
    pub fn method(mut self, method: CampaignMethod) -> Self {
        self.methods.push(method);
        self
    }

    /// Adds several method columns.
    #[must_use]
    pub fn methods(mut self, methods: impl IntoIterator<Item = CampaignMethod>) -> Self {
        self.methods.extend(methods);
        self
    }

    /// Adds one system to the systems axis.
    #[must_use]
    pub fn system(mut self, system: ChipletSystem) -> Self {
        self.systems.push(system);
        self
    }

    /// Adds several systems.
    #[must_use]
    pub fn systems(mut self, systems: impl IntoIterator<Item = ChipletSystem>) -> Self {
        self.systems.extend(systems);
        self
    }

    /// Adds one seed to the seeds axis.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds several seeds.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Default budget for columns without a per-column override.
    #[must_use]
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Number of worker threads (default 1, i.e. serial). Parallelism never
    /// changes outcomes — only wall-clock.
    #[must_use]
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Rollout workers inside every RL run of the grid (default: each
    /// method config's own `parallel_envs`). Parallel rollout collection
    /// is trajectory-invariant, so this never changes outcomes either.
    #[must_use]
    pub fn train_parallel(mut self, train_parallel: usize) -> Self {
        self.train_parallel = Some(train_parallel);
        self
    }

    /// Seeds every run of the grid with the gradient-descent presolve
    /// (default off). Unlike parallelism this *does* change outcomes —
    /// warm-started cells are a different experiment than cold ones, which
    /// is exactly why it is a spec-level axis rather than a per-run detail:
    /// the whole grid stays internally comparable.
    #[must_use]
    pub fn warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Validates the axes and every (system, method) request of the grid.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] for empty axes, a zero parallelism,
    /// duplicate column labels, or any grid cell whose request would be
    /// invalid — campaigns fail at build time, not halfway through a run.
    pub fn build(self) -> Result<CampaignSpec, ConfigError> {
        if self.methods.is_empty() {
            return Err(ConfigError::Invalid {
                field: "methods",
                reason: "a campaign needs at least one method column".to_string(),
            });
        }
        if self.systems.is_empty() {
            return Err(ConfigError::Invalid {
                field: "systems",
                reason: "a campaign needs at least one system".to_string(),
            });
        }
        if self.parallelism == 0 {
            return Err(ConfigError::ExpectedPositive {
                field: "parallelism",
                value: 0.0,
            });
        }
        for (i, method) in self.methods.iter().enumerate() {
            if self.methods[..i].iter().any(|m| m.label == method.label) {
                return Err(ConfigError::Invalid {
                    field: "methods",
                    reason: format!(
                        "duplicate method label `{}`; labels key the report cells",
                        method.label
                    ),
                });
            }
        }
        if self.train_parallel == Some(0) {
            return Err(ConfigError::ExpectedPositive {
                field: "train_parallel",
                value: 0.0,
            });
        }
        let spec = CampaignSpec {
            methods: self.methods,
            systems: self.systems,
            seeds: self.seeds,
            budget: self.budget,
            parallelism: self.parallelism,
            train_parallel: self.train_parallel,
            warm_start: self.warm_start,
        };
        // Validate the whole grid up front; seeds never invalidate a
        // request, so one probe per (system, method) cell suffices.
        for system in 0..spec.systems.len() {
            for method in 0..spec.methods.len() {
                spec.request(
                    RunSpec {
                        system,
                        method,
                        seed: spec.seeds.first().copied(),
                    },
                    None,
                )?;
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlp_chiplet::Chiplet;
    use rlp_thermal::ThermalConfig;

    fn tiny_system(name: &str) -> ChipletSystem {
        let mut sys = ChipletSystem::new(name, 20.0, 20.0);
        sys.add_chiplet(Chiplet::new("a", 5.0, 5.0, 10.0));
        sys
    }

    fn grid_backend() -> ThermalBackend {
        ThermalBackend::Grid {
            config: ThermalConfig::with_grid(8, 8),
        }
    }

    #[test]
    fn grid_expands_systems_then_methods_then_seeds() {
        let spec = CampaignSpec::builder()
            .system(tiny_system("s0"))
            .system(tiny_system("s1"))
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .method(CampaignMethod::new("sa", Method::sa(), grid_backend()))
            .seeds([1, 2])
            .build()
            .unwrap();
        assert_eq!(spec.run_count(), 8);
        let runs = spec.expand();
        assert_eq!(runs.len(), 8);
        assert_eq!(
            (runs[0].system, runs[0].method, runs[0].seed),
            (0, 0, Some(1))
        );
        assert_eq!(
            (runs[1].system, runs[1].method, runs[1].seed),
            (0, 0, Some(2))
        );
        assert_eq!(
            (runs[2].system, runs[2].method, runs[2].seed),
            (0, 1, Some(1))
        );
        assert_eq!(
            (runs[7].system, runs[7].method, runs[7].seed),
            (1, 1, Some(2))
        );
    }

    #[test]
    fn empty_seeds_run_each_cell_once_with_the_config_seed() {
        let spec = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("sa", Method::sa(), grid_backend()))
            .build()
            .unwrap();
        assert_eq!(spec.run_count(), 1);
        assert_eq!(spec.expand()[0].seed, None);
        let request = spec.request(spec.expand()[0], None).unwrap();
        assert_eq!(request.seed(), None);
    }

    #[test]
    fn per_column_budget_overrides_the_default() {
        let spec = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .method(
                CampaignMethod::new("sa", Method::sa(), grid_backend())
                    .with_budget(Budget::Evaluations(5)),
            )
            .budget(Budget::Evaluations(9))
            .build()
            .unwrap();
        let runs = spec.expand();
        assert_eq!(
            spec.request(runs[0], None).unwrap().budget(),
            Some(Budget::Evaluations(9))
        );
        assert_eq!(
            spec.request(runs[1], None).unwrap().budget(),
            Some(Budget::Evaluations(5))
        );
    }

    #[test]
    fn train_parallel_flows_into_every_grid_request() {
        let spec = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .train_parallel(3)
            .build()
            .unwrap();
        assert_eq!(spec.train_parallel(), Some(3));
        let request = spec.request(spec.expand()[0], None).unwrap();
        assert_eq!(request.parallel_envs(), Some(3));

        let err = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .train_parallel(0)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "train_parallel");
    }

    #[test]
    fn warm_start_flows_into_every_grid_request() {
        let spec = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("sa", Method::sa(), grid_backend()))
            .method(CampaignMethod::new(
                "gradient",
                Method::gradient(),
                grid_backend(),
            ))
            .warm_start(true)
            .build()
            .unwrap();
        assert!(spec.warm_start());
        for run in spec.expand() {
            assert!(spec.request(run, None).unwrap().warm_start());
        }

        // Default stays off: cold campaigns remain the baseline experiment.
        let cold = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("sa", Method::sa(), grid_backend()))
            .build()
            .unwrap();
        assert!(!cold.warm_start());
        assert!(!cold.request(cold.expand()[0], None).unwrap().warm_start());
    }

    #[test]
    fn invalid_specs_are_rejected_at_build_time() {
        let err = CampaignSpec::builder()
            .system(tiny_system("s"))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "methods");

        let err = CampaignSpec::builder()
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "systems");

        let err = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .parallelism(0)
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "parallelism");

        let err = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new("rl", Method::rl(), grid_backend()))
            .method(CampaignMethod::new("rl", Method::rl_rnd(), grid_backend()))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "methods");

        // An invalid grid cell surfaces at build time, not mid-campaign.
        let err = CampaignSpec::builder()
            .system(tiny_system("s"))
            .method(CampaignMethod::new(
                "bad",
                Method::rl(),
                ThermalBackend::Grid {
                    config: ThermalConfig::with_grid(1, 1),
                },
            ))
            .build()
            .unwrap_err();
        assert_eq!(err.field(), "thermal");
    }
}
