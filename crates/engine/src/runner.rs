//! The campaign engine: a fail-soft, streaming, resumable worker pool.
//!
//! [`CampaignEngine::run_streamed`] drains a [`CampaignSpec`]'s grid with
//! `std::thread::scope` workers pulling run indices off a shared atomic
//! counter. Every run is an independent, seeded [`rlplanner::Planner`]
//! solve whose analyzer comes from the engine's shared
//! [`ThermalModelCache`], so:
//!
//! * each distinct package configuration is characterised exactly once per
//!   cache lifetime, no matter how many runs or threads need it, and
//! * results are stored by grid index, so a campaign run at any parallelism
//!   level produces outcomes byte-identical to the serial execution under
//!   fixed seeds ([`Budget::TimeLimit`](rlplanner::Budget::TimeLimit) cells
//!   are the documented exception — wall-clock budgets stop runs at
//!   machine-load-dependent points).
//!
//! Three properties make long campaigns safe to run unattended:
//!
//! * **Fail-soft.** A run whose solve fails becomes a
//!   [`RunFailure`] in the report's `failures`
//!   list (and an `error` record on the sink) instead of aborting the
//!   campaign; every completed cell keeps its result.
//! * **Streaming.** The moment a run finishes it is emitted through the
//!   caller's [`RunSink`] as one `rlplanner.campaign-run/v1` line, flushed
//!   before the next run lands — a killed campaign loses at most the runs
//!   in flight. A sink write error is the one thing that does abort
//!   ([`CampaignError::Sink`]): records that cannot be persisted must not
//!   be dropped silently.
//! * **Resumable.** A sink that reports prior records (a reopened
//!   [`JsonlSink`](crate::sink::JsonlSink)) has its `ok` records validated
//!   against the spec (grid index, system, method, seed) and reconstructed
//!   via [`rlplanner::outcome_from_value`] instead of re-executed; `error`
//!   records are retried. Because streamed outcome documents re-render
//!   byte-identically, a truncated-then-resumed campaign produces the same
//!   deterministic results as an uninterrupted one.

use crate::report::{
    CampaignReport, CellSummary, DrainEvent, RunFailure, RunRecord, SchedulerTelemetry,
    WorkerTelemetry,
};
use crate::sink::{NullSink, RunEvent, RunSink, RUN_RECORD_SCHEMA};
use crate::spec::{CampaignSpec, RunSpec};
use rlp_thermal::ThermalModelCache;
use rlplanner::minijson::Value;
use rlplanner::{FloorplanOutcome, PlanError, PrebuiltThermal};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors produced while executing a campaign. Solve failures are *not*
/// errors anymore — they land in [`CampaignReport::failures`]; only
/// problems with the stream itself abort a campaign.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The sink failed to persist a run record; the campaign aborts because
    /// a record that cannot be persisted must not be dropped silently.
    /// Every record emitted before this one is already safe, so reopening
    /// the same stream resumes from them.
    Sink {
        /// Grid index of the record that could not be persisted.
        index: usize,
        /// The rendered I/O error.
        reason: String,
    },
    /// A prior record of the stream being resumed is unusable — malformed,
    /// or inconsistent with the spec (wrong schema, out-of-range grid
    /// index, mismatched system/method/seed, duplicate index).
    Resume {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Sink { index, reason } => write!(
                f,
                "streaming the record of run {index} failed ({reason}); \
                 records emitted before it are intact and resumable"
            ),
            CampaignError::Resume { line, reason } => {
                write!(f, "cannot resume campaign stream: line {line}: {reason}")
            }
        }
    }
}

impl Error for CampaignError {}

/// What the workers share under the emit lock: the caller's sink, the
/// queue-drain timeline (kept in emit order so it mirrors the stream), and
/// the first sink error.
struct EmitState<'a> {
    sink: &'a mut dyn RunSink,
    drain: Vec<DrainEvent>,
    error: Option<(usize, String)>,
}

/// Executes campaigns against a shared [`ThermalModelCache`]; see the
/// [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CampaignEngine {
    cache: Arc<ThermalModelCache>,
}

impl CampaignEngine {
    /// An engine with a fresh, empty characterisation cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine sharing an existing cache — how several campaigns (or a
    /// campaign and ad-hoc solves) amortise one characterisation per
    /// package configuration across a whole session.
    pub fn with_cache(cache: Arc<ThermalModelCache>) -> Self {
        Self { cache }
    }

    /// The engine's characterisation cache.
    pub fn cache(&self) -> &Arc<ThermalModelCache> {
        &self.cache
    }

    /// Runs every cell of the grid and aggregates the outcomes, without
    /// streaming — equivalent to [`run_streamed`](Self::run_streamed) with
    /// a [`NullSink`].
    ///
    /// # Errors
    ///
    /// Never fails in practice (a [`NullSink`] cannot error and has no
    /// prior records to resume); the `Result` is kept so callers handle
    /// streaming and non-streaming campaigns uniformly. Failed runs are
    /// reported in [`CampaignReport::failures`], not as errors.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        self.run_streamed(spec, &mut NullSink)
    }

    /// Runs the grid, emitting each finished run through `sink` as one
    /// `rlplanner.campaign-run/v1` record and resuming from any prior
    /// records the sink reports; see the [module docs](self).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Resume`] if a prior record is malformed or does not
    /// match the spec; [`CampaignError::Sink`] if emitting a record fails.
    /// Failed runs are reported in [`CampaignReport::failures`], not as
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn run_streamed(
        &self,
        spec: &CampaignSpec,
        sink: &mut dyn RunSink,
    ) -> Result<CampaignReport, CampaignError> {
        let started = Instant::now();
        let stats_before = self.cache.stats();
        let runs = spec.expand();

        let results: Vec<Mutex<Option<Result<RunRecord, RunFailure>>>> =
            runs.iter().map(|_| Mutex::new(None)).collect();
        let prior: Vec<String> = sink.prior_records().to_vec();
        let mut resumed_runs = 0usize;
        for (line_index, line) in prior.iter().enumerate() {
            let Some(record) = resume_record(spec, &runs, line_index, line)? else {
                continue; // an `error` record: retry the run
            };
            let mut slot = results[record.index]
                .lock()
                .expect("result slot lock poisoned");
            if slot.is_some() {
                return Err(CampaignError::Resume {
                    line: line_index + 1,
                    reason: format!("duplicate record for grid index {}", record.index),
                });
            }
            *slot = Some(Ok(record));
            resumed_runs += 1;
        }

        let workers = spec.parallelism().min(runs.len()).max(1);
        rlp_obs::obs_event!(
            rlp_obs::Level::Info,
            "rlp_engine",
            "campaign started",
            runs = runs.len(),
            resumed = resumed_runs,
            workers = workers,
        );
        let next = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let emit = Mutex::new(EmitState {
            sink,
            drain: Vec::new(),
            error: None,
        });
        let worker_stats: Vec<(Duration, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let results = &results;
                    let runs = &runs;
                    let next = &next;
                    let abort = &abort;
                    let emit = &emit;
                    let started = &started;
                    scope.spawn(move || {
                        let mut busy = Duration::ZERO;
                        let mut executed = 0usize;
                        loop {
                            if abort.load(Ordering::SeqCst) {
                                break;
                            }
                            let index = next.fetch_add(1, Ordering::SeqCst);
                            let Some(run) = runs.get(index).copied() else {
                                break;
                            };
                            if results[index]
                                .lock()
                                .expect("result slot lock poisoned")
                                .is_some()
                            {
                                continue; // resumed from the sink's prior records
                            }
                            let method = &spec.methods()[run.method];
                            let system = &spec.systems()[run.system];
                            // Per-run span + metrics ride alongside the
                            // scheduler's own drain telemetry; the
                            // campaign/v1 report path is untouched, so
                            // reports stay byte-identical with obs on.
                            let mut span = rlp_obs::obs_span!(
                                rlp_obs::Level::Debug,
                                "rlp_engine",
                                "campaign.run",
                                index = index,
                                worker = worker,
                                system = system.name(),
                                method = method.label(),
                            );
                            let run_started = started.elapsed();
                            let solved = self.execute(spec, run);
                            let run_finished = started.elapsed();
                            let run_elapsed = run_finished.saturating_sub(run_started);
                            span.field("ok", solved.is_ok());
                            span.end();
                            if rlp_obs::metrics_enabled() {
                                let registry = rlp_obs::registry();
                                registry
                                    .counter(if solved.is_ok() {
                                        "engine.runs.completed"
                                    } else {
                                        "engine.runs.failed"
                                    })
                                    .inc();
                                registry
                                    .histogram("engine.run_ns")
                                    .record_duration(run_elapsed);
                            }
                            busy += run_elapsed;
                            executed += 1;
                            let result = match solved {
                                Ok(outcome) => Ok(RunRecord {
                                    index,
                                    system: system.name().to_string(),
                                    system_index: run.system,
                                    method: method.label().to_string(),
                                    seed: outcome.manifest.seed,
                                    outcome,
                                }),
                                // Resolve the effective seed exactly like the
                                // success path's manifest does, so both paths
                                // report the same seed for the same cell.
                                Err(error) => Err(RunFailure {
                                    index,
                                    system: system.name().to_string(),
                                    system_index: run.system,
                                    method: method.label().to_string(),
                                    seed: run.seed.unwrap_or_else(|| method.method().config_seed()),
                                    error,
                                }),
                            };
                            let mut guard = emit.lock().expect("emit lock poisoned");
                            if guard.error.is_some() {
                                break;
                            }
                            let event = match &result {
                                Ok(record) => RunEvent::Completed {
                                    run: record,
                                    system,
                                },
                                Err(failure) => RunEvent::Failed { failure },
                            };
                            match guard.sink.emit(&event) {
                                Ok(()) => {
                                    guard.drain.push(DrainEvent {
                                        index,
                                        worker,
                                        started: run_started,
                                        finished: run_finished,
                                    });
                                    drop(guard);
                                    *results[index].lock().expect("result slot lock poisoned") =
                                        Some(result);
                                }
                                Err(err) => {
                                    guard.error = Some((index, err.to_string()));
                                    abort.store(true, Ordering::SeqCst);
                                    break;
                                }
                            }
                        }
                        (busy, executed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("worker thread panicked"))
                .collect()
        });
        let emit_state = emit.into_inner().expect("emit lock poisoned");
        if let Some((index, reason)) = emit_state.error {
            return Err(CampaignError::Sink { index, reason });
        }

        let mut records = Vec::with_capacity(runs.len());
        let mut failures = Vec::new();
        for slot in results {
            let result = slot
                .into_inner()
                .expect("result slot lock poisoned")
                .expect("every grid index was drained by a worker");
            match result {
                Ok(record) => records.push(record),
                Err(failure) => failures.push(failure),
            }
        }

        let cells = aggregate(spec, &records);
        rlp_obs::obs_event!(
            rlp_obs::Level::Info,
            "rlp_engine",
            "campaign finished",
            completed = records.len(),
            failed = failures.len(),
            wall_clock_s = started.elapsed().as_secs_f64(),
        );
        Ok(CampaignReport {
            systems: spec.systems().to_vec(),
            runs: records,
            failures,
            cells,
            wall_clock: started.elapsed(),
            parallelism: spec.parallelism(),
            resumed_runs,
            scheduler: SchedulerTelemetry {
                workers: worker_stats
                    .into_iter()
                    .map(|(busy, runs)| WorkerTelemetry { busy, runs })
                    .collect(),
                drain: emit_state.drain,
            },
            cache: self.cache.stats().since(&stats_before),
        })
    }

    /// Executes one run: analyzer from the shared cache, then a facade
    /// solve carrying the prebuilt analyzer and its cache telemetry.
    fn execute(&self, spec: &CampaignSpec, run: RunSpec) -> Result<FloorplanOutcome, PlanError> {
        let method = &spec.methods()[run.method];
        let system = &spec.systems()[run.system];
        let (analyzer, prep) = method.thermal().build_cached(system, &self.cache)?;
        let prebuilt = PrebuiltThermal::new(method.thermal().clone(), Arc::new(analyzer), prep);
        let request = spec
            .request(run, Some(prebuilt))
            .map_err(PlanError::Config)?;
        request.solve()
    }
}

/// Validates one prior stream line against the spec and reconstructs its
/// run record. Returns `Ok(None)` for `error` records, which are retried.
fn resume_record(
    spec: &CampaignSpec,
    runs: &[RunSpec],
    line_index: usize,
    line: &str,
) -> Result<Option<RunRecord>, CampaignError> {
    let fail = |reason: String| CampaignError::Resume {
        line: line_index + 1,
        reason,
    };
    let value = Value::parse(line).map_err(|err| fail(format!("invalid JSON: {err}")))?;
    let schema = value
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing `schema` field".to_string()))?;
    if schema != RUN_RECORD_SCHEMA {
        return Err(fail(format!(
            "unknown schema `{schema}` (expected `{RUN_RECORD_SCHEMA}`)"
        )));
    }
    let index = value
        .get("index")
        .and_then(Value::as_f64)
        .filter(|v| v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(v))
        .map(|v| v as usize)
        .ok_or_else(|| fail("missing or invalid `index` field".to_string()))?;
    if index >= runs.len() {
        return Err(fail(format!(
            "grid index {index} out of range for this spec ({} runs)",
            runs.len()
        )));
    }
    let status = value
        .get("status")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing `status` field".to_string()))?;
    match status {
        "error" => Ok(None),
        "ok" => {
            let run = runs[index];
            let method = &spec.methods()[run.method];
            let system = &spec.systems()[run.system];
            let record_system = value
                .get("system")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("missing `system` field".to_string()))?;
            if record_system != system.name() {
                return Err(fail(format!(
                    "grid index {index} is system `{}` in this spec but `{record_system}` \
                     in the stream — the stream was produced by a different spec",
                    system.name()
                )));
            }
            let record_method = value
                .get("method")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("missing `method` field".to_string()))?;
            if record_method != method.label() {
                return Err(fail(format!(
                    "grid index {index} is method `{}` in this spec but `{record_method}` \
                     in the stream — the stream was produced by a different spec",
                    method.label()
                )));
            }
            let record_seed = value
                .get("seed")
                .and_then(Value::as_f64)
                .filter(|v| v.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(v))
                .map(|v| v as u64)
                .ok_or_else(|| fail("missing or invalid `seed` field".to_string()))?;
            let expected_seed = run.seed.unwrap_or_else(|| method.method().config_seed());
            if record_seed != expected_seed {
                return Err(fail(format!(
                    "grid index {index} uses seed {expected_seed} in this spec but \
                     {record_seed} in the stream — the stream was produced by a \
                     different spec"
                )));
            }
            let outcome_value = value
                .get("outcome")
                .ok_or_else(|| fail("missing `outcome` field".to_string()))?;
            let outcome = rlplanner::outcome_from_value(outcome_value, system)
                .map_err(|err| fail(format!("grid index {index}: {err}")))?;
            if outcome.manifest.seed != expected_seed {
                return Err(fail(format!(
                    "grid index {index}: embedded outcome manifest has seed {} but the \
                     record and spec say {expected_seed}",
                    outcome.manifest.seed
                )));
            }
            Ok(Some(RunRecord {
                index,
                system: system.name().to_string(),
                system_index: run.system,
                method: method.label().to_string(),
                seed: record_seed,
                outcome,
            }))
        }
        other => Err(fail(format!("unknown status `{other}`"))),
    }
}

/// Aggregates run records into per-(system, method) cell summaries, in grid
/// order. Cells whose runs all failed produce no summary.
fn aggregate(spec: &CampaignSpec, records: &[RunRecord]) -> Vec<CellSummary> {
    let mut cells = Vec::with_capacity(spec.systems().len() * spec.methods().len());
    for (system_index, system) in spec.systems().iter().enumerate() {
        for method in spec.methods() {
            let members: Vec<(usize, &RunRecord)> = records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.system_index == system_index && r.method == method.label())
                .collect();
            if members.is_empty() {
                continue;
            }
            let rewards: Vec<f64> = members
                .iter()
                .map(|(_, r)| r.outcome.breakdown.reward)
                .collect();
            // A degenerate run can report a NaN reward (the report module
            // renders those as JSON null), which must not panic away a
            // completed campaign; NaN runs are excluded from best-of-seeds
            // rather than ranked.
            let best_run = members
                .iter()
                .filter(|(_, r)| !r.outcome.breakdown.reward.is_nan())
                .max_by(|(_, a), (_, b)| {
                    a.outcome
                        .breakdown
                        .reward
                        .total_cmp(&b.outcome.breakdown.reward)
                })
                .or_else(|| members.first())
                .map(|(index, _)| *index)
                .expect("cell has at least one run");
            let total_runtime = members
                .iter()
                .map(|(_, r)| r.outcome.runtime)
                .sum::<Duration>();
            let eval_counts =
                members
                    .iter()
                    .fold(rlplanner::EvalCounts::default(), |mut acc, (_, r)| {
                        acc.full += r.outcome.evaluation.counts.full;
                        acc.incremental += r.outcome.evaluation.counts.incremental;
                        acc
                    });
            let mean_eval_time = match eval_counts.total() {
                0 => Duration::ZERO,
                evals => Duration::from_secs_f64(total_runtime.as_secs_f64() / evals as f64),
            };
            // Training throughput over the runs that report rollout
            // telemetry (RL methods): total episodes / their total runtime.
            // Episodes come from the rollout telemetry, NOT from
            // `outcome.evaluations` — that counts objective evaluations
            // (hundreds per episode under incremental evaluation) and
            // inflates the throughput by orders of magnitude.
            let training_runs: Vec<&RunRecord> = members
                .iter()
                .filter(|(_, r)| r.outcome.training.is_some())
                .map(|(_, r)| *r)
                .collect();
            let episodes_per_s = (!training_runs.is_empty()).then(|| {
                let episodes: usize = training_runs
                    .iter()
                    .filter_map(|r| r.outcome.training.as_ref())
                    .map(|t| t.episodes)
                    .sum();
                let runtime: f64 = training_runs
                    .iter()
                    .map(|r| r.outcome.runtime.as_secs_f64())
                    .sum();
                episodes as f64 / runtime.max(f64::MIN_POSITIVE)
            });
            cells.push(CellSummary {
                system: system.name().to_string(),
                system_index,
                method: method.label().to_string(),
                seeds: members.iter().map(|(_, r)| r.seed).collect(),
                best_run,
                mean_reward: rewards.iter().sum::<f64>() / rewards.len() as f64,
                min_reward: rewards.iter().copied().fold(f64::INFINITY, f64::min),
                max_reward: rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                total_runtime,
                eval_counts,
                mean_eval_time,
                episodes_per_s,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignMethod;
    use rlp_chiplet::{Chiplet, ChipletSystem, Net, Placement};
    use rlp_thermal::{ThermalBackend, ThermalConfig};
    use rlplanner::{
        Budget, EvalCounts, EvalMode, EvalTelemetry, Method, RewardBreakdown, RewardConfig,
        RunManifest, ThermalPrep, TrainingTelemetry,
    };

    fn tiny_system() -> ChipletSystem {
        let mut sys = ChipletSystem::new("alpha", 24.0, 24.0);
        let a = sys.add_chiplet(Chiplet::new("a", 6.0, 6.0, 20.0));
        let b = sys.add_chiplet(Chiplet::new("b", 5.0, 5.0, 10.0));
        sys.add_net(Net::new(a, b, 32));
        sys
    }

    fn two_method_spec() -> CampaignSpec {
        let grid = ThermalBackend::Grid {
            config: ThermalConfig::with_grid(8, 8),
        };
        CampaignSpec::builder()
            .system(tiny_system())
            .method(CampaignMethod::new("sa", Method::sa(), grid.clone()))
            .method(CampaignMethod::new("rl", Method::rl(), grid))
            .seeds([1, 2])
            .budget(Budget::Evaluations(8))
            .build()
            .unwrap()
    }

    /// A synthetic record: aggregation only reads reward, runtime,
    /// evaluation counts, training telemetry and the labels, so the rest
    /// can be minimal.
    #[allow(clippy::too_many_arguments)]
    fn record(
        index: usize,
        method: &str,
        seed: u64,
        reward: f64,
        evaluations: usize,
        runtime: Duration,
        counts: EvalCounts,
        training: Option<TrainingTelemetry>,
    ) -> RunRecord {
        let system = tiny_system();
        RunRecord {
            index,
            system: system.name().to_string(),
            system_index: 0,
            method: method.to_string(),
            seed,
            outcome: rlplanner::FloorplanOutcome {
                placement: Placement::for_system(&system),
                breakdown: RewardBreakdown {
                    reward,
                    wirelength_mm: 10.0,
                    max_temperature_c: 60.0,
                    eval_mode: EvalMode::Full,
                },
                telemetry: Vec::new(),
                evaluations,
                evaluation: EvalTelemetry {
                    mode: EvalMode::Full,
                    counts,
                },
                training,
                runtime,
                thermal_prep: ThermalPrep::default(),
                manifest: RunManifest {
                    system_name: system.name().to_string(),
                    chiplet_count: system.chiplets().count(),
                    method: Method::sa(),
                    thermal: ThermalBackend::Grid {
                        config: ThermalConfig::with_grid(8, 8),
                    },
                    reward: RewardConfig::default(),
                    seed,
                    warm_start: false,
                },
            },
        }
    }

    fn training(episodes: usize) -> TrainingTelemetry {
        TrainingTelemetry {
            episodes,
            parallel_envs: 1,
            episodes_per_s: 0.0,
            merge_order_hash: 0,
        }
    }

    #[test]
    fn episodes_per_s_counts_training_episodes_not_evaluations() {
        // 6 episodes produced 600 objective evaluations in 2 s. Correct
        // throughput: 3 episodes/s. Summing `outcome.evaluations` instead
        // (the old bug) would report 300 — a 100x inflation.
        let spec = two_method_spec();
        let records = vec![record(
            2,
            "rl",
            1,
            -1.0,
            600,
            Duration::from_secs(2),
            EvalCounts {
                full: 6,
                incremental: 594,
            },
            Some(training(6)),
        )];
        let cells = aggregate(&spec, &records);
        let cell = cells.iter().find(|c| c.method == "rl").unwrap();
        let eps = cell.episodes_per_s.unwrap();
        assert!(
            (eps - 3.0).abs() < 1e-9,
            "episodes_per_s should be 6 episodes / 2 s = 3, got {eps}"
        );
    }

    #[test]
    fn all_nan_reward_cell_aggregates_without_panicking() {
        let spec = two_method_spec();
        let records = vec![
            record(
                0,
                "sa",
                1,
                f64::NAN,
                4,
                Duration::from_secs(1),
                EvalCounts {
                    full: 4,
                    incremental: 0,
                },
                None,
            ),
            record(
                1,
                "sa",
                2,
                f64::NAN,
                4,
                Duration::from_secs(1),
                EvalCounts {
                    full: 4,
                    incremental: 0,
                },
                None,
            ),
        ];
        let cells = aggregate(&spec, &records);
        let cell = cells.iter().find(|c| c.method == "sa").unwrap();
        // No run is rankable, so best-of-seeds falls back to the first.
        assert_eq!(cell.best_run, 0);
        assert!(cell.mean_reward.is_nan());
        assert_eq!(cell.seeds, vec![1, 2]);
    }

    #[test]
    fn mixed_rl_and_sa_cells_aggregate_independently() {
        let spec = two_method_spec();
        let records = vec![
            record(
                0,
                "sa",
                1,
                -2.0,
                8,
                Duration::from_secs(1),
                EvalCounts {
                    full: 8,
                    incremental: 0,
                },
                None,
            ),
            record(
                2,
                "rl",
                1,
                -1.5,
                120,
                Duration::from_secs(3),
                EvalCounts {
                    full: 1,
                    incremental: 119,
                },
                Some(training(12)),
            ),
        ];
        let cells = aggregate(&spec, &records);
        assert_eq!(cells.len(), 2);
        let sa = cells.iter().find(|c| c.method == "sa").unwrap();
        let rl = cells.iter().find(|c| c.method == "rl").unwrap();
        // The SA baseline has no rollout telemetry: no throughput figure.
        assert!(sa.episodes_per_s.is_none());
        let eps = rl.episodes_per_s.unwrap();
        assert!((eps - 4.0).abs() < 1e-9, "12 episodes / 3 s, got {eps}");
        assert_eq!(sa.eval_counts.total(), 8);
        assert_eq!(rl.eval_counts.total(), 120);
    }

    #[test]
    fn mean_eval_time_is_zero_when_no_evaluations_ran() {
        let spec = two_method_spec();
        let records = vec![record(
            0,
            "sa",
            1,
            -2.0,
            0,
            Duration::from_secs(1),
            EvalCounts::default(),
            None,
        )];
        let cells = aggregate(&spec, &records);
        let cell = cells.iter().find(|c| c.method == "sa").unwrap();
        assert_eq!(cell.eval_counts.total(), 0);
        assert_eq!(cell.mean_eval_time, Duration::ZERO);
    }

    #[test]
    fn cells_with_no_completed_runs_are_skipped() {
        // With only an "sa" record present, the "rl" cell (all runs failed
        // or absent) produces no summary instead of a degenerate one.
        let spec = two_method_spec();
        let records = vec![record(
            0,
            "sa",
            1,
            -2.0,
            4,
            Duration::from_secs(1),
            EvalCounts {
                full: 4,
                incremental: 0,
            },
            None,
        )];
        let cells = aggregate(&spec, &records);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].method, "sa");
    }
}
