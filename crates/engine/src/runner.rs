//! The campaign engine: a deterministic scoped worker pool.
//!
//! [`CampaignEngine::run`] drains a [`CampaignSpec`]'s grid with
//! `std::thread::scope` workers pulling run indices off a shared atomic
//! counter. Every run is an independent, seeded [`rlplanner::Planner`]
//! solve whose analyzer comes from the engine's shared
//! [`ThermalModelCache`], so:
//!
//! * each distinct package configuration is characterised exactly once per
//!   cache lifetime, no matter how many runs or threads need it, and
//! * results are stored by grid index, so a campaign run at any parallelism
//!   level produces outcomes byte-identical to the serial execution under
//!   fixed seeds ([`Budget::TimeLimit`](rlplanner::Budget::TimeLimit) cells
//!   are the documented exception — wall-clock budgets stop runs at
//!   machine-load-dependent points).

use crate::report::{CampaignReport, CellSummary, RunRecord};
use crate::spec::{CampaignSpec, RunSpec};
use rlp_thermal::ThermalModelCache;
use rlplanner::{FloorplanOutcome, PlanError, PrebuiltThermal};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors produced while executing a campaign.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CampaignError {
    /// A run of the grid failed; the campaign reports the first failure in
    /// grid order (later runs may have failed too).
    Run {
        /// Name of the run's system.
        system: String,
        /// Label of the run's method column.
        method: String,
        /// The run's seed override, if the spec set one.
        seed: Option<u64>,
        /// The underlying solve error.
        error: PlanError,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Run {
                system,
                method,
                seed,
                error,
            } => {
                write!(f, "run `{method}` on `{system}`")?;
                if let Some(seed) = seed {
                    write!(f, " (seed {seed})")?;
                }
                write!(f, " failed: {error}")
            }
        }
    }
}

impl Error for CampaignError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignError::Run { error, .. } => Some(error),
        }
    }
}

/// Executes campaigns against a shared [`ThermalModelCache`]; see the
/// [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CampaignEngine {
    cache: Arc<ThermalModelCache>,
}

impl CampaignEngine {
    /// An engine with a fresh, empty characterisation cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine sharing an existing cache — how several campaigns (or a
    /// campaign and ad-hoc solves) amortise one characterisation per
    /// package configuration across a whole session.
    pub fn with_cache(cache: Arc<ThermalModelCache>) -> Self {
        Self { cache }
    }

    /// The engine's characterisation cache.
    pub fn cache(&self) -> &Arc<ThermalModelCache> {
        &self.cache
    }

    /// Runs every cell of the grid and aggregates the outcomes.
    ///
    /// # Errors
    ///
    /// Returns the first [`CampaignError`] in grid order if any run fails;
    /// all runs are still attempted (failures do not cancel in-flight
    /// work).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (the panic is propagated).
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        let started = Instant::now();
        let stats_before = self.cache.stats();
        let runs = spec.expand();
        let results: Vec<Mutex<Option<Result<FloorplanOutcome, PlanError>>>> =
            runs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = spec.parallelism().min(runs.len()).max(1);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::SeqCst);
                    let Some(run) = runs.get(index).copied() else {
                        break;
                    };
                    let outcome = self.execute(spec, run);
                    *results[index].lock().expect("result slot lock poisoned") = Some(outcome);
                });
            }
        });

        let mut records = Vec::with_capacity(runs.len());
        for (run, slot) in runs.iter().zip(results) {
            let result = slot
                .into_inner()
                .expect("result slot lock poisoned")
                .expect("every grid index was drained by a worker");
            let method = &spec.methods()[run.method];
            match result {
                Ok(outcome) => records.push(RunRecord {
                    system: spec.systems()[run.system].name().to_string(),
                    system_index: run.system,
                    method: method.label().to_string(),
                    seed: outcome.manifest.seed,
                    outcome,
                }),
                Err(error) => {
                    return Err(CampaignError::Run {
                        system: spec.systems()[run.system].name().to_string(),
                        method: method.label().to_string(),
                        seed: run.seed,
                        error,
                    })
                }
            }
        }

        let cells = aggregate(spec, &records);
        Ok(CampaignReport {
            systems: spec.systems().to_vec(),
            runs: records,
            cells,
            wall_clock: started.elapsed(),
            parallelism: spec.parallelism(),
            cache: self.cache.stats().since(&stats_before),
        })
    }

    /// Executes one run: analyzer from the shared cache, then a facade
    /// solve carrying the prebuilt analyzer and its cache telemetry.
    fn execute(&self, spec: &CampaignSpec, run: RunSpec) -> Result<FloorplanOutcome, PlanError> {
        let method = &spec.methods()[run.method];
        let system = &spec.systems()[run.system];
        let (analyzer, prep) = method.thermal().build_cached(system, &self.cache)?;
        let prebuilt = PrebuiltThermal::new(method.thermal().clone(), Arc::new(analyzer), prep);
        let request = spec
            .request(run, Some(prebuilt))
            .map_err(PlanError::Config)?;
        request.solve()
    }
}

/// Aggregates run records into per-(system, method) cell summaries, in grid
/// order.
fn aggregate(spec: &CampaignSpec, records: &[RunRecord]) -> Vec<CellSummary> {
    let mut cells = Vec::with_capacity(spec.systems().len() * spec.methods().len());
    for (system_index, system) in spec.systems().iter().enumerate() {
        for method in spec.methods() {
            let members: Vec<(usize, &RunRecord)> = records
                .iter()
                .enumerate()
                .filter(|(_, r)| r.system_index == system_index && r.method == method.label())
                .collect();
            if members.is_empty() {
                continue;
            }
            let rewards: Vec<f64> = members
                .iter()
                .map(|(_, r)| r.outcome.breakdown.reward)
                .collect();
            // A degenerate run can report a NaN reward (the report module
            // renders those as JSON null), which must not panic away a
            // completed campaign; NaN runs are excluded from best-of-seeds
            // rather than ranked.
            let best_run = members
                .iter()
                .filter(|(_, r)| !r.outcome.breakdown.reward.is_nan())
                .max_by(|(_, a), (_, b)| {
                    a.outcome
                        .breakdown
                        .reward
                        .total_cmp(&b.outcome.breakdown.reward)
                })
                .or_else(|| members.first())
                .map(|(index, _)| *index)
                .expect("cell has at least one run");
            let total_runtime = members
                .iter()
                .map(|(_, r)| r.outcome.runtime)
                .sum::<Duration>();
            let eval_counts =
                members
                    .iter()
                    .fold(rlplanner::EvalCounts::default(), |mut acc, (_, r)| {
                        acc.full += r.outcome.evaluation.counts.full;
                        acc.incremental += r.outcome.evaluation.counts.incremental;
                        acc
                    });
            let mean_eval_time = match eval_counts.total() {
                0 => Duration::ZERO,
                evals => Duration::from_secs_f64(total_runtime.as_secs_f64() / evals as f64),
            };
            // Training throughput over the runs that report rollout
            // telemetry (RL methods): total episodes / their total runtime.
            let training_runs: Vec<&RunRecord> = members
                .iter()
                .filter(|(_, r)| r.outcome.training.is_some())
                .map(|(_, r)| *r)
                .collect();
            let episodes_per_s = (!training_runs.is_empty()).then(|| {
                let episodes: usize = training_runs.iter().map(|r| r.outcome.evaluations).sum();
                let runtime: f64 = training_runs
                    .iter()
                    .map(|r| r.outcome.runtime.as_secs_f64())
                    .sum();
                episodes as f64 / runtime.max(f64::MIN_POSITIVE)
            });
            cells.push(CellSummary {
                system: system.name().to_string(),
                system_index,
                method: method.label().to_string(),
                seeds: members.iter().map(|(_, r)| r.seed).collect(),
                best_run,
                mean_reward: rewards.iter().sum::<f64>() / rewards.len() as f64,
                min_reward: rewards.iter().copied().fold(f64::INFINITY, f64::min),
                max_reward: rewards.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                total_runtime,
                eval_counts,
                mean_eval_time,
                episodes_per_s,
            });
        }
    }
    cells
}
