//! Streaming run records and the pluggable [`RunSink`].
//!
//! A campaign is hours of compute whose value used to materialise only at
//! the very end, inside one [`CampaignReport`](crate::CampaignReport) — a
//! crash at run N−1 of N threw everything away. The engine now emits each
//! grid cell the moment it finishes as one single-line JSON record
//! (schema [`RUN_RECORD_SCHEMA`], `rlplanner.campaign-run/v1`) through a
//! sink chosen by the caller:
//!
//! * [`NullSink`] — discard records; the classic in-memory
//!   [`CampaignEngine::run`](crate::CampaignEngine::run) API.
//! * [`MemorySink`] — collect records in a `Vec<String>`; what the tests
//!   use to observe the stream.
//! * [`JsonlSink`] — append records to a JSONL file, flushed per record.
//!   Reopening an existing file resumes it: prior records are handed to the
//!   engine, which skips their grid indices and only executes what is
//!   missing.
//!
//! # Run record ([`RUN_RECORD_SCHEMA`])
//!
//! One line per record, compact (no newlines — JSON strings escape them):
//!
//! ```json
//! {"schema":"rlplanner.campaign-run/v1","index":0,"status":"ok",
//!  "system":"multi-gpu","system_index":0,"method":"rl","seed":7,
//!  "evaluations":600,"full_evals":1,"incremental_evals":599,
//!  "runtime_s":10.0,"cache_hits":1,"cache_misses":0,
//!  "characterization_s":0.0,"outcome":{"schema":"rlplanner.outcome/v1",...}}
//! {"schema":"rlplanner.campaign-run/v1","index":3,"status":"error",
//!  "system":"multi-gpu","system_index":0,"method":"sa","seed":8,
//!  "error":"initial placement failed: ..."}
//! ```
//!
//! `index` is the run's position in the spec's canonical grid order
//! (systems outermost, then methods, then seeds) — the key a resumed
//! campaign matches records against its spec with. An `ok` record embeds
//! the full `rlplanner.outcome/v1` document (flattened to one line via
//! [`rlplanner::minijson`]'s canonical render) plus the per-run cache and
//! evaluation telemetry; [`rlplanner::outcome_from_value`] reconstructs the
//! outcome losslessly on resume. An `error` record carries the rendered
//! solve error only — resume retries it.

use crate::report::{RunFailure, RunRecord};
use rlp_chiplet::ChipletSystem;
use rlplanner::minijson::Value;
use rlplanner::report::{json_escape, json_num, outcome_json};
use std::fs::OpenOptions;
use std::io::{self, BufWriter, ErrorKind, Write};
use std::path::{Path, PathBuf};

/// Identifier of the single-line run-record layout streamed by
/// [`crate::CampaignEngine::run_streamed`]; see the [module docs](self).
pub const RUN_RECORD_SCHEMA: &str = "rlplanner.campaign-run/v1";

/// One event of a running campaign, borrowed from the engine at the moment
/// the run finishes.
#[derive(Debug, Clone, Copy)]
pub enum RunEvent<'a> {
    /// A run completed; `system` is the run's system (needed to render the
    /// embedded outcome document).
    Completed {
        /// The completed record, grid index included.
        run: &'a RunRecord,
        /// The record's system.
        system: &'a ChipletSystem,
    },
    /// A run failed to solve.
    Failed {
        /// The failure, grid index included.
        failure: &'a RunFailure,
    },
}

impl RunEvent<'_> {
    /// Grid index of the run this event describes.
    pub fn index(&self) -> usize {
        match self {
            RunEvent::Completed { run, .. } => run.index,
            RunEvent::Failed { failure } => failure.index,
        }
    }

    /// Renders the event as one `rlplanner.campaign-run/v1` line (no
    /// trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            RunEvent::Completed { run, system } => {
                let doc = outcome_json(system, &run.outcome);
                let outcome = Value::parse(&doc)
                    .expect("outcome documents are valid JSON")
                    .render();
                format!(
                    "{{\"schema\":\"{RUN_RECORD_SCHEMA}\",\"index\":{},\"status\":\"ok\",\"system\":\"{}\",\"system_index\":{},\"method\":\"{}\",\"seed\":{},\"evaluations\":{},\"full_evals\":{},\"incremental_evals\":{},\"runtime_s\":{},\"cache_hits\":{},\"cache_misses\":{},\"characterization_s\":{},\"outcome\":{}}}",
                    run.index,
                    json_escape(&run.system),
                    run.system_index,
                    json_escape(&run.method),
                    run.seed,
                    run.outcome.evaluations,
                    run.outcome.evaluation.counts.full,
                    run.outcome.evaluation.counts.incremental,
                    json_num(run.outcome.runtime.as_secs_f64()),
                    run.outcome.thermal_prep.cache_hits,
                    run.outcome.thermal_prep.cache_misses,
                    json_num(run.outcome.thermal_prep.characterization.as_secs_f64()),
                    outcome,
                )
            }
            RunEvent::Failed { failure } => format!(
                "{{\"schema\":\"{RUN_RECORD_SCHEMA}\",\"index\":{},\"status\":\"error\",\"system\":\"{}\",\"system_index\":{},\"method\":\"{}\",\"seed\":{},\"error\":\"{}\"}}",
                failure.index,
                json_escape(&failure.system),
                failure.system_index,
                json_escape(&failure.method),
                failure.seed,
                json_escape(&failure.error.to_string()),
            ),
        }
    }
}

/// Where a campaign streams its per-run records.
///
/// `emit` is called exactly once per run this execution performs (completed
/// or failed), under the engine's emit lock, in completion order. An error
/// aborts the campaign with
/// [`CampaignError::Sink`](crate::CampaignError::Sink) — a record that
/// cannot be persisted must not be silently dropped, and everything emitted
/// before the error is already safe.
pub trait RunSink: Send {
    /// Persist one run record.
    fn emit(&mut self, event: &RunEvent<'_>) -> io::Result<()>;

    /// Records persisted by a previous execution, one line each. The engine
    /// skips the grid indices of `ok` records (after validating them
    /// against the spec) and retries `error` records.
    fn prior_records(&self) -> &[String] {
        &[]
    }
}

/// Discards every record; streaming disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl RunSink for NullSink {
    fn emit(&mut self, _event: &RunEvent<'_>) -> io::Result<()> {
        Ok(())
    }
}

/// Collects records in memory, in emit order.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Vec<String>,
    prior: Vec<String>,
}

impl MemorySink {
    /// An empty sink (fresh campaign).
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink resuming from previously captured lines.
    pub fn with_prior(prior: Vec<String>) -> Self {
        Self {
            lines: Vec::new(),
            prior,
        }
    }

    /// Records emitted by this execution, in emit order.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }
}

impl RunSink for MemorySink {
    fn emit(&mut self, event: &RunEvent<'_>) -> io::Result<()> {
        self.lines.push(event.to_jsonl());
        Ok(())
    }

    fn prior_records(&self) -> &[String] {
        &self.prior
    }
}

/// Appends records to a JSONL file, flushing after every record so a killed
/// campaign loses at most the run in flight.
///
/// Opening a path that already holds records resumes it: the existing
/// lines are loaded as [`prior_records`](RunSink::prior_records) and new
/// records are appended after them. A partially written final line (from a
/// hard kill mid-write) makes the resumed campaign fail with a
/// [`CampaignError::Resume`](crate::CampaignError::Resume) naming the line;
/// delete that line to repair the file.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: BufWriter<std::fs::File>,
    prior: Vec<String>,
}

impl JsonlSink {
    /// Opens `path` for streaming, loading any records a previous campaign
    /// left there.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let prior = match std::fs::read_to_string(&path) {
            Ok(text) => text
                .lines()
                .map(str::trim)
                .filter(|line| !line.is_empty())
                .map(str::to_string)
                .collect(),
            Err(err) if err.kind() == ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
            prior,
        })
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records loaded from a previous campaign.
    pub fn prior_len(&self) -> usize {
        self.prior.len()
    }
}

impl RunSink for JsonlSink {
    fn emit(&mut self, event: &RunEvent<'_>) -> io::Result<()> {
        writeln!(self.writer, "{}", event.to_jsonl())?;
        self.writer.flush()
    }

    fn prior_records(&self) -> &[String] {
        &self.prior
    }
}
