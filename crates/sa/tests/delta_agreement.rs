//! Property tests for the propose/commit/reject evaluation protocol.
//!
//! The load-bearing property of incremental evaluation is *exact*
//! agreement: after any interleaving of commits and rejects, a
//! [`DeltaObjective`] built on [`IncrementalWirelength`] must report the
//! same value a from-scratch full evaluation reports for the same
//! placement — bit for bit, at every step — and an anneal under a fixed
//! seed must take the same trajectory whichever engine evaluates it.

use proptest::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlp_chiplet::bumps::BumpConfig;
use rlp_chiplet::wirelength::bump_aware_wirelength;
use rlp_chiplet::{
    Chiplet, ChipletId, ChipletSystem, IncrementalWirelength, Net, Placement, PlacementGrid,
};
use rlp_sa::moves::{apply_move_in_place, propose_move, random_initial_placement, undo_move};
use rlp_sa::{DeltaObjective, EvalMode, Objective, SaConfig, SaPlanner};

/// A wirelength-minimising incremental objective over
/// [`IncrementalWirelength`] — the same shape the reward calculator's
/// incremental objective has, reduced to the wirelength term.
struct IncrementalWirelengthObjective {
    system: ChipletSystem,
    config: BumpConfig,
    state: Option<IncrementalWirelength>,
}

impl IncrementalWirelengthObjective {
    fn new(system: ChipletSystem) -> Self {
        Self {
            system,
            config: BumpConfig::default(),
            state: None,
        }
    }
}

impl DeltaObjective for IncrementalWirelengthObjective {
    fn reset(&mut self, placement: &Placement) -> f64 {
        let state = IncrementalWirelength::new(&self.system, placement, self.config)
            .expect("complete placement");
        let total = state.total();
        self.state = Some(state);
        -total
    }

    fn propose(&mut self, candidate: &Placement, changed: &[ChipletId]) -> f64 {
        let state = self.state.as_mut().expect("reset before propose");
        -state.propose(&self.system, candidate, changed)
    }

    fn commit(&mut self) {
        self.state.as_mut().expect("pending proposal").commit();
    }

    fn reject(&mut self) {
        self.state.as_mut().expect("pending proposal").reject();
    }

    fn evaluation_mode(&self) -> EvalMode {
        EvalMode::Incremental
    }
}

/// Builds a chain-connected system of `n` chiplets with seeded footprints.
fn chain_system(n: usize, seed: u64) -> ChipletSystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut sys = ChipletSystem::new("prop", 60.0, 60.0);
    let ids: Vec<ChipletId> = (0..n)
        .map(|i| {
            let w = rng.gen_range(4.0..9.0);
            let h = rng.gen_range(4.0..9.0);
            let p = rng.gen_range(5.0..30.0);
            sys.add_chiplet(Chiplet::new(format!("c{i}"), w, h, p))
        })
        .collect();
    for pair in ids.windows(2) {
        let wires = rng.gen_range(4..64);
        sys.add_net(Net::new(pair[0], pair[1], wires));
    }
    // One extra chord so some chiplets have more than two incident nets.
    if n >= 3 {
        sys.add_net(Net::new(ids[0], ids[n - 1], 8));
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// 200 random moves with random commit/reject decisions: the
    /// incremental objective matches a from-scratch full evaluation at
    /// every proposal and after every resolution.
    #[test]
    fn incremental_objective_matches_full_evaluation(
        n in 3usize..6,
        seed in 0u64..1000,
    ) {
        let sys = chain_system(n, seed);
        let grid = PlacementGrid::new(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1CE);
        let mut placement = random_initial_placement(&sys, &grid, 0.2, &mut rng)
            .expect("initial placement");
        let config = BumpConfig::default();

        let mut objective = IncrementalWirelengthObjective::new(sys.clone());
        let initial = objective.reset(&placement);
        let full = -bump_aware_wirelength(&sys, &placement, &config).unwrap();
        prop_assert_eq!(initial.to_bits(), full.to_bits());

        let mut proposals = 0usize;
        let mut attempts = 0usize;
        while proposals < 200 && attempts < 4000 {
            attempts += 1;
            let candidate_move = propose_move(&sys, &grid, &mut rng);
            let Some(undo) = apply_move_in_place(&sys, &grid, &mut placement, candidate_move, 0.2)
            else {
                continue;
            };
            proposals += 1;
            let value = objective.propose(&placement, undo.changed());
            let full = -bump_aware_wirelength(&sys, &placement, &config).unwrap();
            prop_assert_eq!(
                value.to_bits(),
                full.to_bits(),
                "proposal {} diverged: {} vs {}",
                proposals,
                value,
                full
            );
            if rng.gen::<f64>() < 0.5 {
                objective.commit();
            } else {
                objective.reject();
                undo_move(&mut placement, &undo);
            }
            // After resolution the committed placement still agrees.
            let committed = -bump_aware_wirelength(&sys, &placement, &config).unwrap();
            let state_total = -objective.state.as_ref().unwrap().total();
            prop_assert_eq!(state_total.to_bits(), committed.to_bits());
        }
        prop_assert!(proposals >= 50, "only {} legal proposals", proposals);
    }

    /// A fixed-seed anneal takes the identical trajectory whether the
    /// objective evaluates incrementally or from scratch.
    #[test]
    fn anneal_trajectory_is_engine_independent(seed in 0u64..500) {
        let sys = chain_system(4, seed);
        let sa = SaConfig {
            initial_temperature: 2.0,
            final_temperature: 0.05,
            cooling_rate: 0.85,
            moves_per_temperature: 25,
            seed,
            ..SaConfig::default()
        };
        let planner = SaPlanner::new(sys.clone(), sa);

        let full_objective = {
            let sys = sys.clone();
            move |p: &Placement| {
                -bump_aware_wirelength(&sys, p, &BumpConfig::default()).unwrap()
            }
        };
        let full = planner.run(&full_objective as &dyn Objective).unwrap();

        let mut incremental_objective = IncrementalWirelengthObjective::new(sys);
        let incremental = planner.run_delta(&mut incremental_objective).unwrap();

        prop_assert_eq!(&incremental.best_placement, &full.best_placement);
        prop_assert_eq!(
            incremental.best_objective.to_bits(),
            full.best_objective.to_bits()
        );
        prop_assert_eq!(incremental.evaluations, full.evaluations);
        prop_assert_eq!(incremental.accepted_moves, full.accepted_moves);
        prop_assert_eq!(incremental.eval_counts.mode(), EvalMode::Incremental);
        prop_assert_eq!(full.eval_counts.mode(), EvalMode::Full);
        prop_assert_eq!(incremental.eval_counts.total(), incremental.evaluations);
        prop_assert_eq!(full.eval_counts.full, full.evaluations);
    }
}
