//! Legal move generation for the annealer.

use rand::seq::SliceRandom;
use rand::Rng;
use rlp_chiplet::grid::centered_position;
use rlp_chiplet::{ChipletId, ChipletSystem, Placement, PlacementGrid, Rotation};
use std::error::Error;
use std::fmt;

/// One annealing move, mirroring the TAP-2.5D move set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Re-place one chiplet on a different feasible grid cell.
    Relocate {
        /// The chiplet being moved.
        chiplet: ChipletId,
        /// Destination grid cell.
        cell: usize,
    },
    /// Exchange the positions (and rotations) of two chiplets.
    Swap {
        /// First chiplet.
        first: ChipletId,
        /// Second chiplet.
        second: ChipletId,
    },
    /// Toggle the 90° rotation of a chiplet in place.
    Rotate {
        /// The chiplet being rotated.
        chiplet: ChipletId,
    },
}

/// Error returned when no legal initial placement could be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialPlacementError {
    /// The chiplet that could not be placed.
    pub chiplet: ChipletId,
}

impl fmt::Display for InitialPlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "could not find a feasible cell for {} while building the initial placement",
            self.chiplet
        )
    }
}

impl Error for InitialPlacementError {}

/// Builds a random legal initial placement by placing chiplets in order of
/// decreasing area, each on a random feasible grid cell.
///
/// # Errors
///
/// Returns [`InitialPlacementError`] if some chiplet has no feasible cell,
/// which usually means the grid is too coarse or the interposer too small.
pub fn random_initial_placement(
    system: &ChipletSystem,
    grid: &PlacementGrid,
    min_spacing_mm: f64,
    rng: &mut impl Rng,
) -> Result<Placement, InitialPlacementError> {
    let mut order: Vec<ChipletId> = system.chiplet_ids().collect();
    order.sort_by(|&a, &b| {
        system
            .chiplet(b)
            .area()
            .partial_cmp(&system.chiplet(a).area())
            .expect("chiplet areas are finite")
    });
    let mut placement = Placement::for_system(system);
    for id in order {
        let mask = grid.feasibility_mask(system, &placement, id, Rotation::None, min_spacing_mm);
        let feasible: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter(|(_, &ok)| ok)
            .map(|(cell, _)| cell)
            .collect();
        let Some(&cell) = feasible.choose(rng) else {
            return Err(InitialPlacementError { chiplet: id });
        };
        grid.apply_action(system, &mut placement, id, Rotation::None, cell)
            .expect("feasible cell is in range");
    }
    Ok(placement)
}

/// Proposes a random move. The move is *not* yet checked for legality; use
/// [`apply_move`] which validates and returns the modified placement only if
/// it stays legal.
pub fn propose_move(system: &ChipletSystem, grid: &PlacementGrid, rng: &mut impl Rng) -> Move {
    let ids: Vec<ChipletId> = system.chiplet_ids().collect();
    let pick = |rng: &mut dyn rand::RngCore| ids[rng.gen_range(0..ids.len())];
    match rng.gen_range(0..10) {
        // Relocations dominate, as in TAP-2.5D.
        0..=5 => Move::Relocate {
            chiplet: pick(rng),
            cell: rng.gen_range(0..grid.cell_count()),
        },
        6..=8 if ids.len() >= 2 => {
            let first = pick(rng);
            let mut second = pick(rng);
            while second == first {
                second = pick(rng);
            }
            Move::Swap { first, second }
        }
        _ => Move::Rotate { chiplet: pick(rng) },
    }
}

/// Undo record returned by [`apply_move_in_place`]: the chiplets a move
/// changed and their previous placement slots. Stack-allocated — applying
/// and undoing moves performs no heap allocation, which is what lets the
/// anneal loop mutate one placement in place instead of cloning a candidate
/// per move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveUndo {
    ids: [ChipletId; 2],
    prev: [Option<(rlp_chiplet::Position, Rotation)>; 2],
    len: usize,
}

impl MoveUndo {
    fn one(id: ChipletId, prev: Option<(rlp_chiplet::Position, Rotation)>) -> Self {
        Self {
            ids: [id, id],
            prev: [prev, None],
            len: 1,
        }
    }

    fn two(
        first: (ChipletId, Option<(rlp_chiplet::Position, Rotation)>),
        second: (ChipletId, Option<(rlp_chiplet::Position, Rotation)>),
    ) -> Self {
        Self {
            ids: [first.0, second.0],
            prev: [first.1, second.1],
            len: 2,
        }
    }

    /// The chiplets the move changed, in application order.
    pub fn changed(&self) -> &[ChipletId] {
        &self.ids[..self.len]
    }
}

/// Reverts a move applied by [`apply_move_in_place`], restoring the changed
/// chiplets to their previous slots.
pub fn undo_move(placement: &mut Placement, undo: &MoveUndo) {
    for i in (0..undo.len).rev() {
        match undo.prev[i] {
            Some((position, rotation)) => {
                placement.place_rotated(undo.ids[i], position, rotation);
            }
            None => {
                placement.unplace(undo.ids[i]);
            }
        }
    }
}

/// Applies a move directly to `placement`, returning an undo record if the
/// result is legal (every chiplet inside the interposer and spacing
/// respected). On an illegal or inapplicable move the placement is left
/// exactly as it was and `None` is returned.
///
/// This is the allocation-free core of [`apply_move`]; the anneal loop uses
/// it together with [`undo_move`] to avoid cloning a candidate placement on
/// every proposal.
pub fn apply_move_in_place(
    system: &ChipletSystem,
    grid: &PlacementGrid,
    placement: &mut Placement,
    candidate: Move,
    min_spacing_mm: f64,
) -> Option<MoveUndo> {
    let undo = match candidate {
        Move::Relocate { chiplet, cell } => {
            let prev = placement
                .position(chiplet)
                .and_then(|p| placement.rotation(chiplet).map(|r| (p, r)));
            let rotation = placement.rotation(chiplet).unwrap_or(Rotation::None);
            // `apply_action` fails only on an out-of-range cell, before any
            // mutation, so the placement is untouched on the error path.
            grid.apply_action(system, placement, chiplet, rotation, cell)
                .ok()?;
            MoveUndo::one(chiplet, prev)
        }
        Move::Swap { first, second } => {
            let pa = placement.position(first)?;
            let ra = placement.rotation(first)?;
            let pb = placement.position(second)?;
            let rb = placement.rotation(second)?;
            // Swap centre locations, keeping each chiplet's own rotation.
            let centre_a = placement.center_of(first, system)?;
            let centre_b = placement.center_of(second, system)?;
            let fa = system.chiplet(first).footprint(ra);
            let fb = system.chiplet(second).footprint(rb);
            placement.place_rotated(first, centered_position(fa, centre_b), ra);
            placement.place_rotated(second, centered_position(fb, centre_a), rb);
            MoveUndo::two((first, Some((pa, ra))), (second, Some((pb, rb))))
        }
        Move::Rotate { chiplet } => {
            let prev = placement
                .position(chiplet)
                .and_then(|p| placement.rotation(chiplet).map(|r| (p, r)));
            let centre = placement.center_of(chiplet, system)?;
            let rotation = placement.rotation(chiplet)?.toggled();
            let footprint = system.chiplet(chiplet).footprint(rotation);
            placement.place_rotated(chiplet, centered_position(footprint, centre), rotation);
            MoveUndo::one(chiplet, prev)
        }
    };
    if system.validate_placement(placement, min_spacing_mm).is_ok() {
        Some(undo)
    } else {
        undo_move(placement, &undo);
        None
    }
}

/// Applies a move to a copy of the placement, returning the new placement if
/// it is legal (every chiplet inside the interposer and spacing respected).
pub fn apply_move(
    system: &ChipletSystem,
    grid: &PlacementGrid,
    placement: &Placement,
    candidate: Move,
    min_spacing_mm: f64,
) -> Option<Placement> {
    let mut next = placement.clone();
    apply_move_in_place(system, grid, &mut next, candidate, min_spacing_mm).map(|_| next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use rlp_chiplet::Chiplet;

    fn system() -> ChipletSystem {
        let mut sys = ChipletSystem::new("t", 40.0, 40.0);
        sys.add_chiplet(Chiplet::new("a", 8.0, 8.0, 20.0));
        sys.add_chiplet(Chiplet::new("b", 6.0, 10.0, 10.0));
        sys.add_chiplet(Chiplet::new("c", 5.0, 5.0, 5.0));
        sys
    }

    #[test]
    fn initial_placement_is_legal() {
        let sys = system();
        let grid = PlacementGrid::new(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..20 {
            let p = random_initial_placement(&sys, &grid, 0.2, &mut rng).unwrap();
            assert!(p.is_complete());
            assert!(sys.validate_placement(&p, 0.2).is_ok());
        }
    }

    #[test]
    fn initial_placement_fails_on_impossible_instances() {
        let mut sys = ChipletSystem::new("tiny", 10.0, 10.0);
        sys.add_chiplet(Chiplet::new("a", 8.0, 8.0, 1.0));
        sys.add_chiplet(Chiplet::new("b", 8.0, 8.0, 1.0));
        let grid = PlacementGrid::new(8, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(random_initial_placement(&sys, &grid, 0.5, &mut rng).is_err());
    }

    #[test]
    fn applied_moves_preserve_legality() {
        let sys = system();
        let grid = PlacementGrid::new(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut placement = random_initial_placement(&sys, &grid, 0.2, &mut rng).unwrap();
        let mut applied = 0;
        for _ in 0..500 {
            let candidate = propose_move(&sys, &grid, &mut rng);
            if let Some(next) = apply_move(&sys, &grid, &placement, candidate, 0.2) {
                assert!(sys.validate_placement(&next, 0.2).is_ok());
                placement = next;
                applied += 1;
            }
        }
        assert!(applied > 50, "too few legal moves applied: {applied}");
    }

    #[test]
    fn in_place_moves_match_the_cloning_path_and_undo_restores() {
        let sys = system();
        let grid = PlacementGrid::new(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut placement = random_initial_placement(&sys, &grid, 0.2, &mut rng).unwrap();
        for _ in 0..500 {
            let candidate = propose_move(&sys, &grid, &mut rng);
            let cloned = apply_move(&sys, &grid, &placement, candidate, 0.2);
            let before = placement.clone();
            match apply_move_in_place(&sys, &grid, &mut placement, candidate, 0.2) {
                Some(undo) => {
                    // The in-place path lands exactly where the cloning path
                    // does, and undo restores the pre-move state.
                    assert_eq!(Some(&placement), cloned.as_ref());
                    assert!(!undo.changed().is_empty() && undo.changed().len() <= 2);
                    undo_move(&mut placement, &undo);
                    assert_eq!(placement, before);
                    // Re-apply and keep it so the walk explores.
                    let undo = apply_move_in_place(&sys, &grid, &mut placement, candidate, 0.2)
                        .expect("legal move stays legal");
                    let _ = undo;
                }
                None => {
                    assert!(cloned.is_none());
                    assert_eq!(placement, before, "failed moves must not mutate");
                }
            }
        }
    }

    #[test]
    fn swap_exchanges_centres() {
        let sys = system();
        let ids: Vec<_> = sys.chiplet_ids().collect();
        let grid = PlacementGrid::new(20, 20);
        let mut placement = Placement::for_system(&sys);
        grid.apply_action(
            &sys,
            &mut placement,
            ids[0],
            Rotation::None,
            grid.cell_index(5, 5),
        )
        .unwrap();
        grid.apply_action(
            &sys,
            &mut placement,
            ids[1],
            Rotation::None,
            grid.cell_index(14, 14),
        )
        .unwrap();
        grid.apply_action(
            &sys,
            &mut placement,
            ids[2],
            Rotation::None,
            grid.cell_index(5, 14),
        )
        .unwrap();
        let before_a = placement.center_of(ids[0], &sys).unwrap();
        let before_b = placement.center_of(ids[1], &sys).unwrap();
        let next = apply_move(
            &sys,
            &grid,
            &placement,
            Move::Swap {
                first: ids[0],
                second: ids[1],
            },
            0.2,
        )
        .unwrap();
        let after_a = next.center_of(ids[0], &sys).unwrap();
        let after_b = next.center_of(ids[1], &sys).unwrap();
        assert!((after_a.x - before_b.x).abs() < 1e-9);
        assert!((after_b.y - before_a.y).abs() < 1e-9);
    }

    #[test]
    fn rotation_move_toggles_rotation_in_place() {
        let sys = system();
        let ids: Vec<_> = sys.chiplet_ids().collect();
        let grid = PlacementGrid::new(20, 20);
        let mut placement = Placement::for_system(&sys);
        for (i, &id) in ids.iter().enumerate() {
            grid.apply_action(
                &sys,
                &mut placement,
                id,
                Rotation::None,
                grid.cell_index(4 + 6 * i, 10),
            )
            .unwrap();
        }
        let centre_before = placement.center_of(ids[1], &sys).unwrap();
        let next = apply_move(
            &sys,
            &grid,
            &placement,
            Move::Rotate { chiplet: ids[1] },
            0.2,
        )
        .unwrap();
        assert_eq!(next.rotation(ids[1]), Some(Rotation::Quarter));
        let centre_after = next.center_of(ids[1], &sys).unwrap();
        assert!((centre_before.x - centre_after.x).abs() < 1e-9);
        assert!((centre_before.y - centre_after.y).abs() < 1e-9);
    }

    #[test]
    fn illegal_moves_are_rejected() {
        let mut sys = ChipletSystem::new("t", 20.0, 20.0);
        let a = sys.add_chiplet(Chiplet::new("a", 8.0, 8.0, 1.0));
        let b = sys.add_chiplet(Chiplet::new("b", 8.0, 8.0, 1.0));
        let grid = PlacementGrid::new(10, 10);
        let mut placement = Placement::for_system(&sys);
        grid.apply_action(
            &sys,
            &mut placement,
            a,
            Rotation::None,
            grid.cell_index(2, 2),
        )
        .unwrap();
        grid.apply_action(
            &sys,
            &mut placement,
            b,
            Rotation::None,
            grid.cell_index(7, 7),
        )
        .unwrap();
        // Relocating b right on top of a must be rejected.
        let result = apply_move(
            &sys,
            &grid,
            &placement,
            Move::Relocate {
                chiplet: b,
                cell: grid.cell_index(2, 2),
            },
            0.2,
        );
        assert!(result.is_none());
    }
}
