//! The objective interfaces the annealer optimises.
//!
//! Two levels are provided:
//!
//! * [`Objective`] — a stateless "evaluate this complete placement"
//!   function. Simple and always available, but every call pays the full
//!   evaluation cost.
//! * [`DeltaObjective`] — the propose/commit/reject protocol the anneal
//!   loop actually runs on: a proposed move is evaluated against maintained
//!   state (only the changed terms are recomputed), then either committed
//!   or rejected. A blanket implementation lets every [`Objective`] act as
//!   a `DeltaObjective` by falling back to full evaluation, so plain
//!   closures keep working unchanged.

use rlp_chiplet::{ChipletId, Placement};
use serde::{Deserialize, Serialize};

/// A (higher-is-better) objective over complete placements.
///
/// The RLPlanner harness implements this with its thermal-aware reward
/// calculator; unit tests use simple geometric closures.
///
/// # Examples
///
/// ```
/// use rlp_sa::Objective;
/// use rlp_chiplet::Placement;
///
/// // Closures over placements are objectives.
/// let objective = |p: &Placement| -(p.placed_count() as f64);
/// let placement = Placement::new(3);
/// assert_eq!(Objective::evaluate(&objective, &placement), 0.0);
/// ```
pub trait Objective {
    /// Evaluates a placement; larger values are better.
    fn evaluate(&self, placement: &Placement) -> f64;
}

impl<F> Objective for F
where
    F: Fn(&Placement) -> f64,
{
    fn evaluate(&self, placement: &Placement) -> f64 {
        self(placement)
    }
}

impl Objective for &dyn Objective {
    fn evaluate(&self, placement: &Placement) -> f64 {
        (**self).evaluate(placement)
    }
}

/// How an objective evaluates candidate placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalMode {
    /// Every candidate is evaluated from scratch.
    Full,
    /// Candidates are evaluated against maintained propose/commit/reject
    /// state; only the terms a move changes are recomputed.
    Incremental,
}

impl EvalMode {
    /// Stable machine-readable label (`"full"` or `"incremental"`), used in
    /// reports.
    pub fn label(self) -> &'static str {
        match self {
            EvalMode::Full => "full",
            EvalMode::Incremental => "incremental",
        }
    }
}

/// How many candidate evaluations ran in each mode during a search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalCounts {
    /// Evaluations computed from scratch (for an incremental run this is
    /// the initial state construction).
    pub full: usize,
    /// Evaluations served by the incremental engine.
    pub incremental: usize,
}

impl EvalCounts {
    /// Total candidate evaluations in either mode.
    pub fn total(&self) -> usize {
        self.full + self.incremental
    }

    /// The dominant mode: [`EvalMode::Incremental`] if any incremental
    /// evaluation ran, else [`EvalMode::Full`].
    pub fn mode(&self) -> EvalMode {
        if self.incremental > 0 {
            EvalMode::Incremental
        } else {
            EvalMode::Full
        }
    }
}

/// A (higher-is-better) objective with propose/commit/reject move
/// evaluation — what [`crate::SaPlanner`]'s anneal loop runs on.
///
/// The contract mirrors a transactional store:
///
/// 1. [`DeltaObjective::reset`] initialises the state at a placement and
///    returns its objective;
/// 2. [`DeltaObjective::propose`] evaluates a candidate placement that
///    differs from the current state exactly in the chiplets listed in
///    `changed`, returning the candidate's objective (the caller forms the
///    accept-test delta as `candidate - current`, exactly as with full
///    evaluation);
/// 3. [`DeltaObjective::commit`] adopts the candidate as the new current
///    state; [`DeltaObjective::reject`] discards it. Exactly one of the two
///    must follow every propose.
///
/// Incremental implementations must return values **bit-identical** to a
/// from-scratch evaluation of the same placement, so an anneal under a
/// fixed seed takes the same trajectory whichever engine evaluates it.
///
/// Every [`Objective`] is a `DeltaObjective` through the blanket
/// implementation, which evaluates every proposal from scratch and reports
/// [`EvalMode::Full`].
pub trait DeltaObjective {
    /// Initialises the state at `placement` and returns its objective.
    fn reset(&mut self, placement: &Placement) -> f64;

    /// Evaluates a candidate differing from the current state in `changed`;
    /// returns the candidate's objective. Pending until commit/reject.
    fn propose(&mut self, candidate: &Placement, changed: &[ChipletId]) -> f64;

    /// Adopts the pending proposal as the new current state.
    fn commit(&mut self) {}

    /// Discards the pending proposal.
    fn reject(&mut self) {}

    /// Which engine evaluated the candidates (after [`DeltaObjective::reset`]).
    fn evaluation_mode(&self) -> EvalMode {
        EvalMode::Full
    }
}

impl<O: Objective> DeltaObjective for O {
    fn reset(&mut self, placement: &Placement) -> f64 {
        self.evaluate(placement)
    }

    fn propose(&mut self, candidate: &Placement, _changed: &[ChipletId]) -> f64 {
        self.evaluate(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanket_delta_objective_falls_back_to_full_evaluation() {
        let mut obj = |p: &Placement| -(p.placed_count() as f64);
        let mut placement = Placement::new(2);
        assert_eq!(DeltaObjective::reset(&mut obj, &placement), 0.0);
        placement.place(
            rlp_chiplet::ChipletId::from_index(0),
            rlp_chiplet::Position::new(0.0, 0.0),
        );
        let candidate = obj.propose(&placement, &[rlp_chiplet::ChipletId::from_index(0)]);
        assert_eq!(candidate, -1.0);
        obj.commit();
        obj.reject(); // no-ops for stateless objectives
        assert_eq!(obj.evaluation_mode(), EvalMode::Full);
    }

    #[test]
    fn eval_counts_report_mode_and_total() {
        let full = EvalCounts {
            full: 10,
            incremental: 0,
        };
        assert_eq!(full.total(), 10);
        assert_eq!(full.mode(), EvalMode::Full);
        let inc = EvalCounts {
            full: 1,
            incremental: 99,
        };
        assert_eq!(inc.total(), 100);
        assert_eq!(inc.mode(), EvalMode::Incremental);
        assert_eq!(EvalMode::Full.label(), "full");
        assert_eq!(EvalMode::Incremental.label(), "incremental");
    }

    #[test]
    fn closures_are_objectives() {
        let obj = |p: &Placement| p.placed_count() as f64 * 2.0;
        let mut placement = Placement::new(2);
        assert_eq!(obj.evaluate(&placement), 0.0);
        placement.place(
            rlp_chiplet::ChipletId::from_index(0),
            rlp_chiplet::Position::new(0.0, 0.0),
        );
        assert_eq!(obj.evaluate(&placement), 2.0);
    }
}
