//! The objective interface the annealer optimises.

use rlp_chiplet::Placement;

/// A (higher-is-better) objective over complete placements.
///
/// The RLPlanner harness implements this with its thermal-aware reward
/// calculator; unit tests use simple geometric closures.
///
/// # Examples
///
/// ```
/// use rlp_sa::Objective;
/// use rlp_chiplet::Placement;
///
/// // Closures over placements are objectives.
/// let objective = |p: &Placement| -(p.placed_count() as f64);
/// let placement = Placement::new(3);
/// assert_eq!(Objective::evaluate(&objective, &placement), 0.0);
/// ```
pub trait Objective {
    /// Evaluates a placement; larger values are better.
    fn evaluate(&self, placement: &Placement) -> f64;
}

impl<F> Objective for F
where
    F: Fn(&Placement) -> f64,
{
    fn evaluate(&self, placement: &Placement) -> f64 {
        self(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_objectives() {
        let obj = |p: &Placement| p.placed_count() as f64 * 2.0;
        let mut placement = Placement::new(2);
        assert_eq!(obj.evaluate(&placement), 0.0);
        placement.place(
            rlp_chiplet::ChipletId::from_index(0),
            rlp_chiplet::Position::new(0.0, 0.0),
        );
        assert_eq!(obj.evaluate(&placement), 2.0);
    }
}
