//! Simulated-annealing chiplet floorplanner (the TAP-2.5D style baseline).
//!
//! The paper compares RLPlanner against TAP-2.5D, a thermally-aware
//! simulated-annealing placer. This crate reproduces that baseline:
//!
//! * placements live on the same [`rlp_chiplet::PlacementGrid`] the RL
//!   environment uses, so both optimisers search the same space;
//! * the annealer proposes *relocate*, *swap* and *rotate* moves, always
//!   keeping the placement legal (inside the interposer, minimum spacing);
//! * the objective is supplied by the caller through the [`Objective`]
//!   trait, which is how the harness swaps "TAP-2.5D (HotSpot)" for
//!   "TAP-2.5D (fast thermal model)" — same annealer, different thermal
//!   backend inside the objective;
//! * the loop itself runs on the [`DeltaObjective`] propose/commit/reject
//!   protocol: moves mutate one placement in place and incremental
//!   objectives recompute only what a move changed, while plain
//!   [`Objective`] values fall back to full evaluation through a blanket
//!   implementation — same trajectory under a fixed seed either way.
//!
//! The annealer **maximises** the objective (the paper's reward is a
//! negative cost, so larger is better).

pub mod anneal;
pub mod moves;
pub mod objective;
pub mod progress;

pub use anneal::{SaConfig, SaPlanner, SaResult};
pub use moves::{InitialPlacementError, Move, MoveUndo};
pub use objective::{DeltaObjective, EvalCounts, EvalMode, Objective};
pub use progress::{AnnealObserver, NullAnnealObserver, TeeAnnealObserver};
