//! The simulated-annealing loop.
//!
//! The loop runs on the [`DeltaObjective`] propose/commit/reject protocol:
//! moves are applied to one placement in place, the objective evaluates the
//! candidate against its maintained state, and a rejected move is undone.
//! Plain [`Objective`] values (closures, reward calculators) run through
//! the blanket `DeltaObjective` implementation, which falls back to full
//! evaluation — same trajectory, just without the incremental speed-up.

use crate::moves::{
    apply_move_in_place, propose_move, random_initial_placement, undo_move, InitialPlacementError,
};
use crate::objective::{DeltaObjective, EvalCounts, EvalMode, Objective};
use crate::progress::{AnnealObserver, NullAnnealObserver};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlp_chiplet::{ChipletSystem, Placement, PlacementGrid};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Annealing schedule and search parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Starting temperature of the schedule (in objective units).
    pub initial_temperature: f64,
    /// Temperature at which the schedule stops.
    pub final_temperature: f64,
    /// Geometric cooling factor applied after every temperature step.
    pub cooling_rate: f64,
    /// Number of proposed moves per temperature step.
    pub moves_per_temperature: usize,
    /// Minimum spacing between chiplets in millimetres.
    pub min_spacing_mm: f64,
    /// Placement grid resolution (columns, rows).
    pub grid: (usize, usize),
    /// Random seed.
    pub seed: u64,
    /// Optional wall-clock budget; the anneal stops early when exceeded.
    pub time_budget: Option<Duration>,
    /// Optional cap on objective evaluations; used to give the SA baseline
    /// the same evaluation budget as an RL training run.
    pub max_evaluations: Option<usize>,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            initial_temperature: 1.0,
            final_temperature: 1e-3,
            cooling_rate: 0.95,
            moves_per_temperature: 50,
            min_spacing_mm: 0.2,
            grid: (16, 16),
            seed: 0,
            time_budget: None,
            max_evaluations: None,
        }
    }
}

impl SaConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.initial_temperature <= 0.0 || self.final_temperature <= 0.0 {
            return Err("temperatures must be positive".to_string());
        }
        if self.final_temperature > self.initial_temperature {
            return Err("final temperature must not exceed the initial temperature".to_string());
        }
        if !(0.0 < self.cooling_rate && self.cooling_rate < 1.0) {
            return Err("cooling rate must be in (0, 1)".to_string());
        }
        if self.moves_per_temperature == 0 {
            return Err("moves_per_temperature must be positive".to_string());
        }
        if self.grid.0 == 0 || self.grid.1 == 0 {
            return Err("grid must be non-empty".to_string());
        }
        Ok(())
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SaResult {
    /// Best placement found.
    pub best_placement: Placement,
    /// Objective of the best placement.
    pub best_objective: f64,
    /// Objective of the initial placement (before any move).
    pub initial_objective: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
    /// How many of those evaluations each engine served: all `full` when
    /// the objective evaluates from scratch; one `full` (the initial state
    /// construction) plus `evaluations - 1` `incremental` when a
    /// [`DeltaObjective`] evaluated moves against maintained state.
    pub eval_counts: EvalCounts,
    /// Number of accepted moves.
    pub accepted_moves: usize,
    /// Wall-clock duration of the search.
    pub runtime: Duration,
}

/// A simulated-annealing floorplanner over a fixed chiplet system.
#[derive(Debug, Clone)]
pub struct SaPlanner {
    system: ChipletSystem,
    config: SaConfig,
}

impl SaPlanner {
    /// Creates a planner for a system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`SaConfig::validate`] to
    /// check beforehand.
    pub fn new(system: ChipletSystem, config: SaConfig) -> Self {
        config.validate().expect("invalid SA configuration");
        Self { system, config }
    }

    /// The system being floorplanned.
    pub fn system(&self) -> &ChipletSystem {
        &self.system
    }

    /// The annealing configuration.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Runs the anneal, maximising `objective`.
    ///
    /// # Errors
    ///
    /// Returns [`InitialPlacementError`] if no legal initial placement exists
    /// on the configured grid.
    pub fn run(&self, objective: &dyn Objective) -> Result<SaResult, InitialPlacementError> {
        self.run_observed(objective, &mut NullAnnealObserver)
    }

    /// Runs the anneal like [`SaPlanner::run`], reporting every objective
    /// evaluation to `observer` as it happens.
    ///
    /// # Errors
    ///
    /// Returns [`InitialPlacementError`] if no legal initial placement exists
    /// on the configured grid.
    pub fn run_observed(
        &self,
        objective: &dyn Objective,
        observer: &mut dyn AnnealObserver,
    ) -> Result<SaResult, InitialPlacementError> {
        // Every `Objective` is a `DeltaObjective` through the blanket
        // full-evaluation fallback, so the two entry points share one loop.
        let mut adapter: &dyn Objective = objective;
        self.run_delta_observed(&mut adapter, observer)
    }

    /// Runs the anneal on a [`DeltaObjective`], maximising it.
    ///
    /// # Errors
    ///
    /// Returns [`InitialPlacementError`] if no legal initial placement exists
    /// on the configured grid.
    pub fn run_delta(
        &self,
        objective: &mut dyn DeltaObjective,
    ) -> Result<SaResult, InitialPlacementError> {
        self.run_delta_observed(objective, &mut NullAnnealObserver)
    }

    /// Runs the anneal on the propose/commit/reject protocol — the real
    /// loop behind every entry point. Moves are applied to one placement in
    /// place; `objective` evaluates each candidate against its maintained
    /// state and a rejected move is undone, so per-move cost is the
    /// objective's delta cost, not a clone plus a full evaluation.
    ///
    /// Under a fixed seed the trajectory — every candidate, accept decision
    /// and the final result — is identical whether `objective` evaluates
    /// incrementally or through the full-evaluation fallback, because
    /// [`DeltaObjective`] implementations return values bit-identical to a
    /// from-scratch evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`InitialPlacementError`] if no legal initial placement exists
    /// on the configured grid.
    pub fn run_delta_observed(
        &self,
        objective: &mut dyn DeltaObjective,
        observer: &mut dyn AnnealObserver,
    ) -> Result<SaResult, InitialPlacementError> {
        let start = Instant::now();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let grid = PlacementGrid::new(self.config.grid.0, self.config.grid.1);

        // The random constructor places chiplets one at a time without
        // backtracking, so on tightly packed systems a single attempt can
        // strand a chiplet. Retry a bounded number of times before giving up.
        let mut current = None;
        let mut last_error = None;
        for _ in 0..32 {
            match random_initial_placement(
                &self.system,
                &grid,
                self.config.min_spacing_mm,
                &mut rng,
            ) {
                Ok(placement) => {
                    current = Some(placement);
                    break;
                }
                Err(err) => last_error = Some(err),
            }
        }
        let current = match current {
            Some(placement) => placement,
            None => return Err(last_error.expect("at least one attempt was made")),
        };
        Ok(self.anneal_from(start, rng, grid, current, objective, observer))
    }

    /// Runs the anneal from a caller-supplied initial placement — a warm
    /// start — instead of a random construction.
    ///
    /// The supplied placement must be complete and legal on this planner's
    /// spacing rule; if it is not, the planner falls back to the random
    /// construction of [`SaPlanner::run_delta_observed`] so a bad warm start
    /// degrades to the cold-start behaviour instead of failing. The random
    /// entry points are untouched either way: they draw their initial
    /// placement from the seeded RNG exactly as before, so existing seeds
    /// reproduce bit-identical trajectories.
    ///
    /// # Errors
    ///
    /// Returns [`InitialPlacementError`] only on the fallback path, when no
    /// legal random initial placement exists either.
    pub fn run_delta_observed_from(
        &self,
        initial: Placement,
        objective: &mut dyn DeltaObjective,
        observer: &mut dyn AnnealObserver,
    ) -> Result<SaResult, InitialPlacementError> {
        if !initial.is_complete()
            || self
                .system
                .validate_placement(&initial, self.config.min_spacing_mm)
                .is_err()
        {
            return self.run_delta_observed(objective, observer);
        }
        let start = Instant::now();
        let rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let grid = PlacementGrid::new(self.config.grid.0, self.config.grid.1);
        Ok(self.anneal_from(start, rng, grid, initial, objective, observer))
    }

    /// The anneal loop proper, shared by the cold- and warm-start entry
    /// points: everything after the initial placement is fixed.
    fn anneal_from(
        &self,
        start: Instant,
        mut rng: ChaCha8Rng,
        grid: PlacementGrid,
        mut current: Placement,
        objective: &mut dyn DeltaObjective,
        observer: &mut dyn AnnealObserver,
    ) -> SaResult {
        let mut current_objective = objective.reset(&current);
        let initial_objective = current_objective;
        let mut best = current.clone();
        let mut best_objective = current_objective;
        let mut evaluations = 1usize;
        let mut accepted_moves = 0usize;
        observer.on_evaluation(0, current_objective, best_objective, true);

        // Metrics handles are resolved once per run; the hot loop then pays
        // one branch on a local when metrics are off, and never perturbs the
        // RNG stream or the trajectory either way.
        let obs = rlp_obs::metrics_enabled().then(|| {
            let registry = rlp_obs::registry();
            (
                registry.counter("sa.moves.proposed"),
                registry.counter("sa.moves.accepted"),
                registry.histogram("sa.move_eval_ns"),
            )
        });

        let mut temperature = self.config.initial_temperature;
        'outer: while temperature > self.config.final_temperature {
            for _ in 0..self.config.moves_per_temperature {
                if let Some(budget) = self.config.time_budget {
                    if start.elapsed() > budget {
                        break 'outer;
                    }
                }
                if let Some(max_evals) = self.config.max_evaluations {
                    if evaluations >= max_evals {
                        break 'outer;
                    }
                }
                let move_started = obs.as_ref().map(|_| Instant::now());
                let candidate_move = propose_move(&self.system, &grid, &mut rng);
                let Some(undo) = apply_move_in_place(
                    &self.system,
                    &grid,
                    &mut current,
                    candidate_move,
                    self.config.min_spacing_mm,
                ) else {
                    continue;
                };
                let candidate_objective = objective.propose(&current, undo.changed());
                evaluations += 1;
                let delta = candidate_objective - current_objective;
                let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temperature).exp();
                if accept {
                    objective.commit();
                    current_objective = candidate_objective;
                    accepted_moves += 1;
                    if current_objective > best_objective {
                        best_objective = current_objective;
                        best = current.clone();
                    }
                } else {
                    objective.reject();
                    undo_move(&mut current, &undo);
                }
                if let Some((proposed, accepted, move_eval_ns)) = &obs {
                    proposed.inc();
                    if accept {
                        accepted.inc();
                    }
                    if let Some(at) = move_started {
                        move_eval_ns.record_duration(at.elapsed());
                    }
                }
                observer.on_evaluation(
                    evaluations - 1,
                    candidate_objective,
                    best_objective,
                    accept,
                );
            }
            temperature *= self.config.cooling_rate;
        }

        let eval_counts = match objective.evaluation_mode() {
            EvalMode::Incremental => EvalCounts {
                full: 1,
                incremental: evaluations - 1,
            },
            EvalMode::Full => EvalCounts {
                full: evaluations,
                incremental: 0,
            },
        };
        if obs.is_some() {
            let registry = rlp_obs::registry();
            registry.counter("sa.runs").inc();
            registry
                .counter("sa.evals.full")
                .add(eval_counts.full as u64);
            registry
                .counter("sa.evals.incremental")
                .add(eval_counts.incremental as u64);
        }
        SaResult {
            best_placement: best,
            best_objective,
            initial_objective,
            evaluations,
            eval_counts,
            accepted_moves,
            runtime: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlp_chiplet::{wirelength::total_wirelength, Chiplet, Net};

    fn connected_system() -> ChipletSystem {
        let mut sys = ChipletSystem::new("t", 40.0, 40.0);
        let a = sys.add_chiplet(Chiplet::new("a", 8.0, 8.0, 20.0));
        let b = sys.add_chiplet(Chiplet::new("b", 8.0, 8.0, 20.0));
        let c = sys.add_chiplet(Chiplet::new("c", 6.0, 6.0, 10.0));
        sys.add_net(Net::new(a, b, 64));
        sys.add_net(Net::new(b, c, 16));
        sys
    }

    fn quick_config(seed: u64) -> SaConfig {
        SaConfig {
            initial_temperature: 2.0,
            final_temperature: 0.01,
            cooling_rate: 0.9,
            moves_per_temperature: 40,
            seed,
            ..SaConfig::default()
        }
    }

    #[test]
    fn annealing_reduces_wirelength() {
        let sys = connected_system();
        let planner = SaPlanner::new(sys.clone(), quick_config(0));
        // Maximise the negative wirelength (i.e. minimise wirelength).
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let result = planner.run(&objective).unwrap();
        assert!(result.best_objective >= result.initial_objective);
        assert!(result.accepted_moves > 0);
        assert!(result.evaluations > 10);
        assert!(sys.validate_placement(&result.best_placement, 0.2).is_ok());
        // The optimum pulls connected chiplets together; the final wirelength
        // should be well below a spread-out placement's.
        let wl = total_wirelength(&sys, &result.best_placement);
        assert!(wl < 64.0 * 30.0, "wirelength {wl} too large");
    }

    #[test]
    fn different_seeds_explore_differently_but_both_improve() {
        let sys = connected_system();
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let r1 = SaPlanner::new(sys.clone(), quick_config(1))
            .run(&objective)
            .unwrap();
        let r2 = SaPlanner::new(sys.clone(), quick_config(2))
            .run(&objective)
            .unwrap();
        assert!(r1.best_objective >= r1.initial_objective);
        assert!(r2.best_objective >= r2.initial_objective);
    }

    #[test]
    fn evaluation_budget_is_respected() {
        let sys = connected_system();
        let config = SaConfig {
            max_evaluations: Some(25),
            ..quick_config(3)
        };
        let planner = SaPlanner::new(sys.clone(), config);
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let result = planner.run(&objective).unwrap();
        assert!(result.evaluations <= 25);
    }

    #[test]
    fn time_budget_stops_the_search() {
        let sys = connected_system();
        let config = SaConfig {
            time_budget: Some(Duration::from_millis(0)),
            ..quick_config(4)
        };
        let planner = SaPlanner::new(sys.clone(), config);
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let result = planner.run(&objective).unwrap();
        // Only the initial evaluation happens before the budget check trips.
        assert_eq!(result.evaluations, 1);
    }

    #[test]
    fn best_placement_is_always_legal() {
        let sys = connected_system();
        let planner = SaPlanner::new(sys.clone(), quick_config(5));
        let objective = |_: &Placement| 0.0; // flat objective: accept everything
        let result = planner.run(&objective).unwrap();
        assert!(sys.validate_placement(&result.best_placement, 0.2).is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SaConfig {
            cooling_rate: 1.5,
            ..SaConfig::default()
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            final_temperature: 10.0,
            initial_temperature: 1.0,
            ..SaConfig::default()
        }
        .validate()
        .is_err());
        assert!(SaConfig {
            moves_per_temperature: 0,
            ..SaConfig::default()
        }
        .validate()
        .is_err());
        assert!(SaConfig::default().validate().is_ok());
    }

    #[test]
    fn observer_sees_every_evaluation_in_order() {
        struct Recorder {
            count: usize,
            best: Vec<f64>,
        }
        impl AnnealObserver for Recorder {
            fn on_evaluation(
                &mut self,
                index: usize,
                _objective: f64,
                best_objective: f64,
                _accepted: bool,
            ) {
                assert_eq!(index, self.count, "evaluation indices must be dense");
                self.count += 1;
                self.best.push(best_objective);
            }
        }

        let sys = connected_system();
        let planner = SaPlanner::new(sys.clone(), quick_config(6));
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let mut recorder = Recorder {
            count: 0,
            best: Vec::new(),
        };
        let result = planner.run_observed(&objective, &mut recorder).unwrap();
        assert_eq!(recorder.count, result.evaluations);
        // The best-so-far series is monotone non-decreasing and ends at the
        // reported best objective.
        assert!(recorder.best.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(*recorder.best.last().unwrap(), result.best_objective);
    }

    #[test]
    fn warm_start_anneals_from_the_given_placement() {
        let sys = connected_system();
        let config = quick_config(7);
        let grid = PlacementGrid::new(config.grid.0, config.grid.1);
        let mut seed_rng = ChaCha8Rng::seed_from_u64(99);
        let warm =
            random_initial_placement(&sys, &grid, config.min_spacing_mm, &mut seed_rng).unwrap();
        let planner = SaPlanner::new(sys.clone(), config);
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let warm_objective = -total_wirelength(&sys, &warm);
        let mut adapter: &dyn Objective = &objective;
        let result = planner
            .run_delta_observed_from(warm.clone(), &mut adapter, &mut NullAnnealObserver)
            .unwrap();
        // The anneal starts exactly at the supplied placement, and the best
        // result can only improve on it.
        assert_eq!(result.initial_objective, warm_objective);
        assert!(result.best_objective >= warm_objective);
        assert!(sys.validate_placement(&result.best_placement, 0.2).is_ok());
    }

    #[test]
    fn illegal_warm_start_falls_back_to_the_random_path() {
        let sys = connected_system();
        let planner = SaPlanner::new(sys.clone(), quick_config(8));
        let objective = {
            let sys = sys.clone();
            move |p: &Placement| -total_wirelength(&sys, p)
        };
        let cold = planner.run(&objective).unwrap();
        // An incomplete placement is not a usable warm start; the fallback
        // must reproduce the cold-start trajectory bit for bit.
        let mut adapter: &dyn Objective = &objective;
        let warm = planner
            .run_delta_observed_from(
                Placement::for_system(&sys),
                &mut adapter,
                &mut NullAnnealObserver,
            )
            .unwrap();
        assert_eq!(cold.best_placement, warm.best_placement);
        assert_eq!(cold.best_objective, warm.best_objective);
        assert_eq!(cold.evaluations, warm.evaluations);
    }

    #[test]
    #[should_panic(expected = "invalid SA configuration")]
    fn planner_rejects_invalid_config() {
        SaPlanner::new(
            connected_system(),
            SaConfig {
                initial_temperature: -1.0,
                ..SaConfig::default()
            },
        );
    }
}
