//! Streaming progress hooks for the annealing loop.
//!
//! [`crate::SaPlanner::run_observed`] reports every objective evaluation to
//! an [`AnnealObserver`], which is how callers stream per-candidate
//! telemetry out of a run (e.g. to compare convergence against an RL
//! training curve) without the annealer committing to a storage format.

/// Receives progress events from an annealing run.
///
/// Every method has a no-op default, so an observer only implements the
/// events it cares about.
pub trait AnnealObserver {
    /// Called after every objective evaluation with its 0-based index (index
    /// 0 is the initial placement), the candidate's objective value, the
    /// best objective seen so far, and whether the candidate was accepted as
    /// the current state.
    fn on_evaluation(&mut self, index: usize, objective: f64, best_objective: f64, accepted: bool) {
        let _ = (index, objective, best_objective, accepted);
    }
}

/// An observer that ignores every event; the default when a caller does not
/// need telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAnnealObserver;

impl AnnealObserver for NullAnnealObserver {}

/// Forwards every annealing event to two observers, `first` before
/// `second` — how a caller attaches two independent consumers (say, a
/// telemetry collector and a progress-streaming serving layer) to one run.
#[derive(Debug)]
pub struct TeeAnnealObserver<'a, A: ?Sized, B: ?Sized> {
    /// Receives each event first.
    pub first: &'a mut A,
    /// Receives each event second.
    pub second: &'a mut B,
}

impl<A, B> AnnealObserver for TeeAnnealObserver<'_, A, B>
where
    A: AnnealObserver + ?Sized,
    B: AnnealObserver + ?Sized,
{
    fn on_evaluation(&mut self, index: usize, objective: f64, best_objective: f64, accepted: bool) {
        self.first
            .on_evaluation(index, objective, best_objective, accepted);
        self.second
            .on_evaluation(index, objective, best_objective, accepted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder(Vec<(usize, f64, f64, bool)>);

    impl AnnealObserver for Recorder {
        fn on_evaluation(
            &mut self,
            index: usize,
            objective: f64,
            best_objective: f64,
            accepted: bool,
        ) {
            self.0.push((index, objective, best_objective, accepted));
        }
    }

    #[test]
    fn default_method_is_a_no_op() {
        NullAnnealObserver.on_evaluation(0, -1.0, -1.0, true);
    }

    #[test]
    fn custom_observer_receives_events() {
        let mut recorder = Recorder::default();
        recorder.on_evaluation(0, -3.0, -3.0, true);
        recorder.on_evaluation(1, -2.0, -2.0, true);
        assert_eq!(recorder.0.len(), 2);
        assert_eq!(recorder.0[1], (1, -2.0, -2.0, true));
    }

    #[test]
    fn tee_forwards_every_event_to_both_observers() {
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        {
            let mut tee = TeeAnnealObserver {
                first: &mut a,
                second: &mut b,
            };
            tee.on_evaluation(0, -3.0, -3.0, true);
            tee.on_evaluation(1, -2.0, -2.0, false);
        }
        assert_eq!(a.0, b.0);
        assert_eq!(a.0.len(), 2);
    }
}
