//! End-to-end tests driving an in-process daemon over real TCP sockets:
//! the byte-identity contract, progress streaming, backpressure, cancel,
//! connection teardown and graceful shutdown under load.

use rlp_benchmarks::synthetic_case;
use rlp_chiplet::ChipletSystem;
use rlp_sa::SaConfig;
use rlp_serve::{ClientError, ServeClient, Server, ServerConfig, Submit};
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::report::{outcome_json, request_json};
use rlplanner::{outcome_from_value, Budget, FloorplanRequest, Method};
use std::io;
use std::net::SocketAddr;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Outcome-document lines that legitimately differ between two runs of the
/// same solve (wall-clock measurements). Everything else must match to the
/// byte.
const VOLATILE: &[&str] = &["\"runtime_s\"", "\"thermal_prep\"", "\"episodes_per_s\""];

fn deterministic_projection(doc: &str) -> String {
    doc.lines()
        .filter(|line| !VOLATILE.iter().any(|key| line.contains(key)))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A small fixed-seed SA request over the fast thermal backend (the cached
/// path) — milliseconds per solve.
fn sa_request(budget: usize, seed: u64) -> FloorplanRequest {
    sa_request_with_moves(budget, seed, SaConfig::default().moves_per_temperature)
}

/// A deliberately long anneal (seconds, not milliseconds): the evaluations
/// budget only *caps* the anneal, so a slow job needs a slow natural
/// schedule, not a large cap.
fn slow_sa_request(seed: u64) -> FloorplanRequest {
    sa_request_with_moves(1_000_000, seed, 400)
}

fn sa_request_with_moves(
    budget: usize,
    seed: u64,
    moves_per_temperature: usize,
) -> FloorplanRequest {
    FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::Sa {
            config: SaConfig {
                final_temperature: 1e-6,
                moves_per_temperature,
                ..SaConfig::default()
            },
        })
        .thermal(ThermalBackend::Fast {
            config: ThermalConfig::with_grid(16, 16),
            characterization: CharacterizationOptions::default(),
        })
        .budget(Budget::Evaluations(budget))
        .seed(seed)
        .build()
        .expect("test request is valid")
}

fn start_server(workers: usize, capacity: usize) -> (SocketAddr, JoinHandle<io::Result<()>>) {
    start_server_with_policy(workers, capacity, None)
}

fn start_server_with_policy(
    workers: usize,
    capacity: usize,
    policy: Option<String>,
) -> (SocketAddr, JoinHandle<io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity: capacity,
        policy,
    })
    .expect("bind on an OS-assigned port");
    let addr = server.local_addr().expect("bound address");
    (addr, thread::spawn(move || server.run()))
}

/// Re-renders a daemon outcome through the canonical renderer; the parse →
/// render pair is byte-preserving, so this is exactly the document the
/// daemon rendered.
fn canonical(outcome: &rlplanner::minijson::Value, system: &ChipletSystem) -> String {
    let parsed = outcome_from_value(outcome, system).expect("daemon outcome parses");
    outcome_json(system, &parsed)
}

/// Polls `stats` until `accept` passes or the deadline expires.
fn wait_for_stats(
    client: &mut ServeClient,
    accept: impl Fn(&rlp_serve::StatsReport) -> bool,
    what: &str,
) -> rlp_serve::StatsReport {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats reply");
        if accept(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {stats:?}"
        );
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn fixed_seed_daemon_solve_is_byte_identical_to_direct_planner() {
    let request = sa_request(400, 7);
    let direct = outcome_json(
        request.system(),
        &request.solve().expect("direct solve succeeds"),
    );

    let (addr, server) = start_server(2, 4);
    let mut client = ServeClient::connect(addr).expect("connect");
    let document = request_json(&request);

    // Two identical solves: the second must hit the shared thermal cache.
    for round in 0..2 {
        let Submit::Accepted(job) = client.submit(&document, 0).expect("submit") else {
            panic!("empty daemon rejected a solve");
        };
        let result = client.wait_outcome(job).expect("job completes");
        assert!(result.progress.is_empty(), "streaming was not requested");
        let served = canonical(&result.outcome, request.system());
        assert_eq!(
            deterministic_projection(&served),
            deterministic_projection(&direct),
            "served solve diverged from the direct planner on round {round}"
        );
    }

    let stats = client.stats().expect("stats reply");
    assert_eq!(stats.cache_models, 1, "one distinct thermal configuration");
    assert_eq!(stats.cache_misses, 1, "characterised exactly once");
    assert!(stats.cache_hits >= 1, "second solve hit the cache");
    assert_eq!(stats.scheduler.completed, 2);

    assert_eq!(client.shutdown().expect("shutdown ack"), 0);
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn progress_streams_without_changing_the_outcome() {
    let request = sa_request(300, 11);
    let direct = outcome_json(
        request.system(),
        &request.solve().expect("direct solve succeeds"),
    );

    let (addr, server) = start_server(1, 4);
    let mut client = ServeClient::connect(addr).expect("connect");
    let Submit::Accepted(job) = client.submit(&request_json(&request), 50).expect("submit") else {
        panic!("empty daemon rejected a solve");
    };
    let result = client.wait_outcome(job).expect("job completes");
    assert!(
        !result.progress.is_empty(),
        "progress_every=50 over 300 evaluations must stream samples"
    );
    for sample in &result.progress {
        assert!(sample.candidate.is_multiple_of(50));
        assert!(sample.best_reward >= sample.reward);
    }
    // Observation is passive: the streamed solve is the direct solve.
    assert_eq!(
        deterministic_projection(&canonical(&result.outcome, request.system())),
        deterministic_projection(&direct),
    );

    client.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn full_queue_answers_busy_and_queued_jobs_cancel() {
    // One worker, queue of one: job A runs, job B waits, job C bounces.
    let (addr, server) = start_server(1, 1);
    let mut client = ServeClient::connect(addr).expect("connect");

    let slow = request_json(&slow_sa_request(3));
    let Submit::Accepted(running) = client.submit(&slow, 0).expect("submit A") else {
        panic!("empty daemon rejected job A");
    };
    wait_for_stats(&mut client, |s| s.scheduler.running == 1, "job A to start");

    let quick = request_json(&sa_request(100, 4));
    let Submit::Accepted(queued) = client.submit(&quick, 0).expect("submit B") else {
        panic!("queue had a free slot for job B");
    };
    assert_eq!(
        client.submit(&quick, 0).expect("submit C"),
        Submit::Busy { capacity: 1 },
        "a full queue must answer busy, not block"
    );

    // Cancel reaches only queued jobs; ids never admitted are unknown.
    assert_eq!(client.status(queued).expect("status"), "queued");
    assert!(client.cancel(queued).expect("cancel B"));
    assert!(
        !client.cancel(queued).expect("double cancel"),
        "already gone"
    );
    assert_eq!(client.status(queued).expect("status"), "cancelled");
    assert!(!client.cancel(running).expect("cancel A"), "A is running");
    assert_eq!(client.status(999).expect("status"), "unknown");

    client.wait_outcome(running).expect("job A completes");
    client.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn connection_teardown_cancels_its_queued_jobs() {
    let (addr, server) = start_server(1, 4);
    let mut doomed = ServeClient::connect(addr).expect("connect A");
    let mut watcher = ServeClient::connect(addr).expect("connect B");

    let slow = request_json(&slow_sa_request(5));
    let quick = request_json(&sa_request(100, 6));
    assert!(matches!(
        doomed.submit(&slow, 0).expect("submit slow"),
        Submit::Accepted(_)
    ));
    wait_for_stats(
        &mut watcher,
        |s| s.scheduler.running == 1,
        "slow job to start",
    );
    for _ in 0..2 {
        assert!(matches!(
            doomed.submit(&quick, 0).expect("submit quick"),
            Submit::Accepted(_)
        ));
    }

    // Dropping the connection must cancel its two queued jobs; the running
    // one completes without an audience.
    drop(doomed);
    let stats = wait_for_stats(
        &mut watcher,
        |s| s.scheduler.cancelled == 2 && s.scheduler.running == 0 && s.scheduler.queued == 0,
        "teardown to cancel the queued jobs",
    );
    assert_eq!(
        stats.scheduler.completed, 1,
        "only the running job finished"
    );

    watcher.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn graceful_shutdown_under_load_drains_in_flight_jobs() {
    let (addr, server) = start_server(2, 8);
    let mut submitter = ServeClient::connect(addr).expect("connect A");
    let mut controller = ServeClient::connect(addr).expect("connect B");

    let document = request_json(&sa_request(30_000, 9));
    let jobs: Vec<u64> = (0..4)
        .map(|i| match submitter.submit(&document, 0).expect("submit") {
            Submit::Accepted(job) => job,
            Submit::Busy { .. } => panic!("queue of 8 rejected job {i}"),
        })
        .collect();

    // Shutdown with work still queued/running: everything already admitted
    // must drain before the daemon exits.
    controller.shutdown().expect("shutdown ack");
    for job in jobs {
        submitter.wait_outcome(job).expect("admitted job drains");
    }
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn malformed_and_inadmissible_documents_are_remote_errors() {
    let (addr, server) = start_server(1, 2);
    let mut client = ServeClient::connect(addr).expect("connect");

    // Not a request document at all.
    match client.submit("{ \"schema\": \"other/v9\" }", 0) {
        Err(ClientError::Remote(message)) => {
            assert!(message.contains("schema"), "unhelpful error: {message}");
        }
        other => panic!("daemon accepted a non-request document: {other:?}"),
    }
    // Structurally valid but semantically hostile: a zero-evaluation
    // budget, which the builder's validation must reject at admission.
    let hostile =
        request_json(&sa_request(100, 1)).replace("\"evaluations\": 100", "\"evaluations\": 0");
    match client.submit(&hostile, 0) {
        Err(ClientError::Remote(message)) => {
            assert!(!message.is_empty());
        }
        other => panic!("daemon accepted a hostile document: {other:?}"),
    }
    // The connection survives rejected documents.
    assert_eq!(client.status(1).expect("status"), "unknown");

    client.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn metrics_rpc_exposes_a_job_timeline_and_frames_carry_timings() {
    use rlp_serve::protocol::{self, ClientMessage};
    use rlplanner::minijson::Value;
    use std::net::TcpStream;

    // The metrics registry is process-global (the `rlp_serve` binary
    // enables it at startup; tests must do so themselves). Recording is
    // outcome-invariant by design, so enabling it here cannot disturb the
    // byte-identity tests sharing this process.
    rlp_obs::set_metrics_enabled(true);

    let (addr, server) = start_server(1, 4);
    let document = request_json(&sa_request(200, 23));

    // Drive the wire directly: the frame-level timing fields are stripped
    // by `ServeClient` (it only surfaces the embedded outcome document).
    let mut stream = TcpStream::connect(addr).expect("connect");
    let read = |stream: &mut TcpStream| -> Value {
        let payload = protocol::read_frame(stream)
            .expect("read frame")
            .expect("daemon closed early");
        Value::parse(&payload).expect("daemon frames are valid JSON")
    };

    protocol::write_frame(&mut stream, &ClientMessage::render_solve(&document, 0))
        .expect("send solve");
    let accepted = read(&mut stream);
    assert_eq!(
        accepted.get("type").and_then(Value::as_str),
        Some("accepted")
    );
    let outcome = read(&mut stream);
    assert_eq!(outcome.get("type").and_then(Value::as_str), Some("outcome"));

    // The VOLATILE job timings ride on the frame, never inside the
    // byte-comparable outcome document.
    let queue_ms = outcome
        .get("queue_ms")
        .and_then(Value::as_f64)
        .expect("outcome frame carries queue_ms");
    let solve_ms = outcome
        .get("solve_ms")
        .and_then(Value::as_f64)
        .expect("outcome frame carries solve_ms");
    assert!(queue_ms >= 0.0, "negative queue wait: {queue_ms}");
    assert!(solve_ms > 0.0, "a real solve takes measurable time");
    let embedded = outcome.get("outcome").expect("embedded outcome document");
    assert!(
        embedded.get("queue_ms").is_none(),
        "timings leaked into the document"
    );

    // Status frames carry queue_ms too (this job is done; its timings
    // stay frozen).
    protocol::write_frame(&mut stream, &ClientMessage::render_status(1)).expect("send status");
    let status = read(&mut stream);
    assert_eq!(status.get("type").and_then(Value::as_str), Some("status"));
    assert!(
        status.get("queue_ms").and_then(Value::as_f64).is_some(),
        "status frame for a known job carries queue_ms: {status:?}"
    );

    protocol::write_frame(&mut stream, &ClientMessage::render_metrics()).expect("send metrics");
    let reply = read(&mut stream);
    assert_eq!(reply.get("type").and_then(Value::as_str), Some("metrics"));
    let snapshot = reply.get("metrics").expect("embedded snapshot");
    assert_eq!(
        snapshot.get("schema").and_then(Value::as_str),
        Some("rlplanner.metrics/v1")
    );

    let counters = snapshot.get("counters").expect("counters object");
    let counter = |name: &str| counters.get(name).and_then(Value::as_f64).unwrap_or(0.0);
    assert!(
        counter("serve.jobs.admitted") >= 1.0,
        "no admitted jobs counted"
    );
    assert!(
        counter("serve.jobs.completed") >= 1.0,
        "no completed jobs counted"
    );
    assert!(
        counter("plan.solves") >= 1.0,
        "the planner facade saw no solve"
    );

    // The per-job span timeline: every phase histogram saw this job.
    let histograms = snapshot.get("histograms").expect("histograms object");
    for phase in [
        "serve.job.queue_wait_ns",
        "serve.job.solve_ns",
        "serve.job.serialize_ns",
        "serve.job.flush_ns",
    ] {
        let hist = histograms
            .get(phase)
            .unwrap_or_else(|| panic!("missing `{phase}` histogram"));
        let count = hist.get("count").and_then(Value::as_f64).unwrap_or(0.0);
        assert!(count >= 1.0, "`{phase}` recorded nothing");
        assert!(
            hist.get("p50").and_then(Value::as_f64).is_some(),
            "`{phase}` has no p50"
        );
    }

    protocol::write_frame(&mut stream, &ClientMessage::render_shutdown()).expect("send shutdown");
    let ack = read(&mut stream);
    assert_eq!(ack.get("type").and_then(Value::as_str), Some("shutdown"));
    drop(stream);
    server.join().expect("server thread").expect("clean exit");
}

/// The thermal backend the pretrained tests share with `tests/pretrained.rs`
/// at the repository root: small enough that characterisation is cheap.
fn tiny_fast_backend() -> ThermalBackend {
    ThermalBackend::Fast {
        config: ThermalConfig::with_grid(12, 12),
        characterization: CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 10.0],
            distance_bins: 8,
            ..CharacterizationOptions::default()
        },
    }
}

/// Trains a two-episode RL run on `synthetic_case(1)` and saves its policy
/// to a scratch path unique to this process and `name`.
fn train_tiny_policy(name: &str) -> std::path::PathBuf {
    use rlplanner::{AgentConfig, RlPlannerConfig};
    let path =
        std::env::temp_dir().join(format!("rlp-daemon-{}-{name}.policy", std::process::id()));
    FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::Rl {
            config: RlPlannerConfig {
                episodes_per_update: 2,
                agent: AgentConfig {
                    conv_channels: (2, 4),
                    feature_dim: 16,
                    rnd_hidden_dim: 16,
                    rnd_embedding_dim: 4,
                    ..AgentConfig::default()
                },
                ..RlPlannerConfig::default()
            },
        })
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(2))
        .seed(5)
        .save_policy(path.display().to_string())
        .build()
        .expect("training request is valid")
        .solve()
        .expect("training solve succeeds");
    path
}

fn pretrained_request(path: &std::path::Path) -> FloorplanRequest {
    FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::pretrained(path.display().to_string()))
        .thermal(tiny_fast_backend())
        .build()
        .expect("pretrained request is valid")
}

#[test]
fn preloaded_pretrained_daemon_solve_is_byte_identical_and_needs_no_disk() {
    let path = train_tiny_policy("preload");
    let request = pretrained_request(&path);
    let direct = outcome_json(
        request.system(),
        &request.solve().expect("direct pretrained solve"),
    );

    // The daemon preloads the policy at bind; deleting the file afterwards
    // proves the solve runs from the in-memory copy, not the filesystem.
    let (addr, server) = start_server_with_policy(1, 4, Some(path.display().to_string()));
    std::fs::remove_file(&path).expect("remove policy after preload");

    let mut client = ServeClient::connect(addr).expect("connect");
    let Submit::Accepted(job) = client.submit(&request_json(&request), 0).expect("submit") else {
        panic!("empty daemon rejected a pretrained solve");
    };
    let result = client.wait_outcome(job).expect("pretrained job completes");
    let served = canonical(&result.outcome, request.system());
    assert_eq!(
        deterministic_projection(&served),
        deterministic_projection(&direct),
        "daemon pretrained solve diverged from the direct planner"
    );

    // Inference only: the served outcome carries no training telemetry.
    let parsed = outcome_from_value(&result.outcome, request.system()).expect("outcome parses");
    assert!(parsed.training.is_none(), "daemon solve must not train");
    assert_eq!(parsed.evaluations, 1, "one greedy rollout");

    assert_eq!(client.shutdown().expect("shutdown ack"), 0);
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn hostile_policy_files_surface_as_failed_frames_not_crashes() {
    // No preload: the worker reads the policy path per request.
    let (addr, server) = start_server(1, 2);
    let mut client = ServeClient::connect(addr).expect("connect");

    let submit_and_fail = |client: &mut ServeClient, path: &std::path::Path| -> String {
        let Submit::Accepted(job) = client
            .submit(&request_json(&pretrained_request(path)), 0)
            .expect("submit")
        else {
            panic!("daemon rejected a structurally valid pretrained request");
        };
        match client.wait_outcome(job) {
            Err(ClientError::Remote(message)) => message,
            other => panic!("hostile policy file did not fail the job: {other:?}"),
        }
    };

    // A missing file is a typed I/O failure naming the path.
    let missing = std::env::temp_dir().join(format!(
        "rlp-daemon-{}-does-not-exist.policy",
        std::process::id()
    ));
    let message = submit_and_fail(&mut client, &missing);
    assert!(
        message.contains("policy file"),
        "unhelpful error: {message}"
    );
    assert!(
        message.contains("does-not-exist"),
        "error does not name the path: {message}"
    );

    // A corrupt (checksum-flipped) file is a typed integrity failure.
    let path = train_tiny_policy("corrupt");
    let mut bytes = std::fs::read(&path).expect("read policy");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite policy");
    let message = submit_and_fail(&mut client, &path);
    std::fs::remove_file(&path).ok();
    assert!(
        message.contains("checksum"),
        "corruption not surfaced as a checksum error: {message}"
    );

    // The daemon survives both failures and still answers RPCs.
    assert_eq!(client.status(999).expect("status"), "unknown");
    client.shutdown().expect("shutdown ack");
    server.join().expect("server thread").expect("clean exit");
}

#[test]
fn binding_on_a_corrupt_policy_fails_fast() {
    let path = std::env::temp_dir().join(format!(
        "rlp-daemon-{}-bad-preload.policy",
        std::process::id()
    ));
    std::fs::write(&path, b"PNG\x89 definitely not a policy file").expect("write garbage");
    let Err(err) = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        queue_capacity: 1,
        policy: Some(path.display().to_string()),
    }) else {
        panic!("binding with a corrupt policy must fail");
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("policy file"),
        "unhelpful bind error: {err}"
    );
}
