//! The `rlplanner.rpc/v1` wire protocol: framing and message documents.
//!
//! # Framing
//!
//! Every message in either direction is one *frame*: a 4-byte big-endian
//! unsigned length followed by that many bytes of UTF-8 JSON. Frames are
//! bounded by [`MAX_FRAME_BYTES`]; a peer announcing a larger frame is
//! malformed and the connection is closed. The JSON payload is parsed by
//! the hardened `rlplanner::minijson` parser (nesting bounded by
//! [`rlplanner::minijson::MAX_DEPTH`]), so adversarial documents fail with
//! an error frame instead of exhausting the stack.
//!
//! # Client → server messages
//!
//! Every message carries `"schema": "rlplanner.rpc/v1"` and a `"type"`:
//!
//! ```json
//! { "schema": "rlplanner.rpc/v1", "type": "solve",
//!   "progress_every": 0, "request": { ...rlplanner.request/v1... } }
//! { "schema": "rlplanner.rpc/v1", "type": "status",  "job": 3 }
//! { "schema": "rlplanner.rpc/v1", "type": "cancel",  "job": 3 }
//! { "schema": "rlplanner.rpc/v1", "type": "stats" }
//! { "schema": "rlplanner.rpc/v1", "type": "metrics" }
//! { "schema": "rlplanner.rpc/v1", "type": "shutdown" }
//! ```
//!
//! `solve` embeds a full `rlplanner.request/v1` document (see
//! `rlplanner::report::request_json`). `progress_every` asks the daemon to
//! stream every Nth candidate as a progress frame while the job runs; `0`
//! (the default) disables streaming. Progress never influences the solve.
//!
//! # Server → client messages
//!
//! ```json
//! { "schema": "rlplanner.rpc/v1", "type": "accepted",  "job": 3 }
//! { "schema": "rlplanner.rpc/v1", "type": "busy",      "capacity": 16 }
//! { "schema": "rlplanner.rpc/v1", "type": "error",     "message": "..." }
//! { "schema": "rlplanner.rpc/v1", "type": "progress",  "job": 3,
//!   "candidate": 40, "reward": -2.1, "best_reward": -1.9 }
//! { "schema": "rlplanner.rpc/v1", "type": "outcome",   "job": 3,
//!   "queue_ms": 0.41, "solve_ms": 141.2,
//!   "outcome": { ...rlplanner.outcome/v1... } }
//! { "schema": "rlplanner.rpc/v1", "type": "failed",    "job": 3, "message": "...",
//!   "queue_ms": 0.41, "solve_ms": 141.2 }
//! { "schema": "rlplanner.rpc/v1", "type": "status",    "job": 3, "state": "queued",
//!   "queue_ms": 12.5 }
//! { "schema": "rlplanner.rpc/v1", "type": "cancelled", "job": 3, "ok": true }
//! { "schema": "rlplanner.rpc/v1", "type": "stats",
//!   "cache": { "models": 1, "hits": 7, "misses": 1 },
//!   "scheduler": { "workers": 2, "capacity": 16, "queued": 0, "running": 1,
//!                  "admitted": 8, "completed": 7, "failed": 0, "cancelled": 0 } }
//! { "schema": "rlplanner.rpc/v1", "type": "metrics",
//!   "metrics": { ...rlplanner.metrics/v1... } }
//! { "schema": "rlplanner.rpc/v1", "type": "shutdown", "draining": 2 }
//! ```
//!
//! Request/response pairs (`accepted`/`busy`/`error`, `status`,
//! `cancelled`, `stats`, `metrics`, `shutdown`) are sent in request order,
//! but job-lifecycle frames (`progress`, `outcome`, `failed`) are pushed
//! by worker threads whenever the job produces them, so a client must be
//! prepared to see them interleaved with any reply and demultiplex on
//! `job`. `busy` is the backpressure signal: the job queue was full and
//! the request was *not* admitted — retry later. Job states reported by
//! `status` are `queued`, `running`, `done`, `failed`, `cancelled` and
//! `unknown` (an id never admitted).
//!
//! # Job timings are VOLATILE
//!
//! `outcome`, `failed` and `status` frames carry the queue's wall-clock
//! measurements for the job (see [`crate::queue::JobTimings`]):
//! `queue_ms` (admission → worker dispatch) and `solve_ms` (dispatch →
//! finish; absent until the job is dispatched — on `status` frames a
//! running job reports its still-growing value). Like `runtime_s` inside
//! the outcome document, these are VOLATILE fields: they vary run to run
//! and must be stripped before byte-comparing a served solve against a
//! direct one. The embedded `outcome` document itself is unchanged and
//! stays byte-identical on its deterministic fields.
//!
//! `metrics` replies embed a full `rlplanner.metrics/v1` registry
//! snapshot (see `rlp_obs::MetricsSnapshot::render_json` for the schema):
//! process-wide counters, gauges and latency histograms, including the
//! per-phase job timeline histograms `serve.job.queue_wait_ns`,
//! `serve.job.solve_ns`, `serve.job.serialize_ns` and
//! `serve.job.flush_ns`.

use rlplanner::minijson::Value;
use rlplanner::report::{json_escape, json_num};
use std::io::{self, Read, Write};

/// Identifier carried by every rpc message in both directions.
pub const RPC_SCHEMA: &str = "rlplanner.rpc/v1";

/// Upper bound on a frame's JSON payload. Large enough for any realistic
/// outcome document (telemetry included), small enough that a hostile
/// length prefix cannot make the receiver allocate unbounded memory.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidInput` if `payload`
/// exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame(stream: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds {MAX_FRAME_BYTES}", payload.len()),
        ));
    }
    let len = (payload.len() as u32).to_be_bytes();
    stream.write_all(&len)?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed the connection).
///
/// # Errors
///
/// Returns `InvalidData` for an oversized length prefix or a non-UTF-8
/// payload, `UnexpectedEof` for a connection cut mid-frame, or the
/// underlying I/O error.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a frame of {len} bytes (limit {MAX_FRAME_BYTES})"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// A parsed client → server message.
#[derive(Debug)]
pub enum ClientMessage {
    /// Submit the embedded request; stream every Nth candidate (0 = none).
    Solve {
        /// The embedded `rlplanner.request/v1` document, still undecoded —
        /// the server parses it with `rlplanner::request_from_value`.
        request: Value,
        /// Progress-streaming stride (0 disables streaming).
        progress_every: usize,
    },
    /// Ask for a job's lifecycle state.
    Status {
        /// The job id being queried.
        job: u64,
    },
    /// Cancel a *queued* job (running jobs cannot be interrupted).
    Cancel {
        /// The job id to cancel.
        job: u64,
    },
    /// Ask for cache + scheduler telemetry.
    Stats,
    /// Ask for the full `rlplanner.metrics/v1` registry snapshot.
    Metrics,
    /// Begin graceful shutdown: stop admissions, drain the queue, exit 0.
    Shutdown,
}

impl ClientMessage {
    /// Parses one client frame.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation: JSON
    /// syntax, wrong schema, unknown type or a malformed field.
    pub fn parse(payload: &str) -> Result<ClientMessage, String> {
        let doc = Value::parse(payload).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or("message has no `schema` string")?;
        if schema != RPC_SCHEMA {
            return Err(format!(
                "unsupported schema `{schema}` (expected `{RPC_SCHEMA}`)"
            ));
        }
        let kind = doc
            .get("type")
            .and_then(Value::as_str)
            .ok_or("message has no `type` string")?;
        let job = |doc: &Value| -> Result<u64, String> {
            match doc.get("job").and_then(Value::as_f64) {
                Some(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u64),
                _ => Err(format!("`{kind}` needs a non-negative integer `job`")),
            }
        };
        match kind {
            "solve" => {
                let request = doc
                    .get("request")
                    .cloned()
                    .ok_or("`solve` needs a `request` document")?;
                let progress_every = match doc.get("progress_every") {
                    None | Some(Value::Null) => 0,
                    Some(value) => match value.as_f64() {
                        Some(v) if v.fract() == 0.0 && v >= 0.0 => v as usize,
                        _ => return Err("`progress_every` must be a non-negative integer".into()),
                    },
                };
                Ok(ClientMessage::Solve {
                    request,
                    progress_every,
                })
            }
            "status" => Ok(ClientMessage::Status { job: job(&doc)? }),
            "cancel" => Ok(ClientMessage::Cancel { job: job(&doc)? }),
            "stats" => Ok(ClientMessage::Stats),
            "metrics" => Ok(ClientMessage::Metrics),
            "shutdown" => Ok(ClientMessage::Shutdown),
            other => Err(format!("unknown message type `{other}`")),
        }
    }

    /// Renders a `solve` message embedding an already-rendered
    /// `rlplanner.request/v1` document.
    pub fn render_solve(request_json: &str, progress_every: usize) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"solve\", \
             \"progress_every\": {progress_every}, \"request\": {request_json} }}"
        )
    }

    /// Renders a `status` query.
    pub fn render_status(job: u64) -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"status\", \"job\": {job} }}")
    }

    /// Renders a `cancel` request.
    pub fn render_cancel(job: u64) -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"cancel\", \"job\": {job} }}")
    }

    /// Renders a `stats` query.
    pub fn render_stats() -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"stats\" }}")
    }

    /// Renders a `metrics` query.
    pub fn render_metrics() -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"metrics\" }}")
    }

    /// Renders a `shutdown` request.
    pub fn render_shutdown() -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"shutdown\" }}")
    }
}

/// Scheduler-side counters reported by a `stats` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bounded queue capacity (jobs waiting, not counting running ones).
    pub capacity: usize,
    /// Jobs currently waiting in the queue.
    pub queued: usize,
    /// Jobs currently executing on a worker.
    pub running: usize,
    /// Jobs ever admitted (ids are assigned at admission).
    pub admitted: usize,
    /// Jobs that finished with an outcome.
    pub completed: usize,
    /// Jobs that finished with a solve error.
    pub failed: usize,
    /// Queued jobs cancelled before running.
    pub cancelled: usize,
}

/// Server-side render helpers; one function per frame type.
pub mod frames {
    use super::*;
    use crate::queue::JobTimings;
    use rlp_thermal::ThermalCacheSnapshot;

    /// Renders the VOLATILE `queue_ms`/`solve_ms` fields job frames carry
    /// (empty string when the queue had no record of the job).
    fn timing_fields(timings: Option<&JobTimings>) -> String {
        let Some(timings) = timings else {
            return String::new();
        };
        let mut out = format!(", \"queue_ms\": {}", json_num(timings.queue_ms()));
        if let Some(solve_ms) = timings.solve_ms() {
            out.push_str(&format!(", \"solve_ms\": {}", json_num(solve_ms)));
        }
        out
    }

    /// `accepted` — the job was admitted under this id.
    pub fn accepted(job: u64) -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"accepted\", \"job\": {job} }}")
    }

    /// `busy` — the queue was full; the request was not admitted.
    pub fn busy(capacity: usize) -> String {
        format!("{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"busy\", \"capacity\": {capacity} }}")
    }

    /// `error` — the request was malformed or inadmissible.
    pub fn error(message: &str) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"error\", \"message\": \"{}\" }}",
            json_escape(message)
        )
    }

    /// `progress` — one streamed candidate from a running job.
    pub fn progress(job: u64, candidate: usize, reward: f64, best_reward: f64) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"progress\", \"job\": {job}, \
             \"candidate\": {candidate}, \"reward\": {}, \"best_reward\": {} }}",
            json_num(reward),
            json_num(best_reward)
        )
    }

    /// `outcome` — the job finished; embeds the canonical outcome document
    /// plus the VOLATILE job timings (see the [module docs](super)).
    pub fn outcome(job: u64, outcome_json: &str, timings: Option<&JobTimings>) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"outcome\", \"job\": {job}{}, \
             \"outcome\": {outcome_json} }}",
            timing_fields(timings)
        )
    }

    /// `failed` — the job's solve returned an error.
    pub fn failed(job: u64, message: &str, timings: Option<&JobTimings>) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"failed\", \"job\": {job}, \
             \"message\": \"{}\"{} }}",
            json_escape(message),
            timing_fields(timings)
        )
    }

    /// `status` — a job's lifecycle state, with the timings measured so
    /// far for a known job (`solve_ms` still growing while running).
    pub fn status(job: u64, state: &str, timings: Option<&JobTimings>) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"status\", \"job\": {job}, \
             \"state\": \"{state}\"{} }}",
            timing_fields(timings)
        )
    }

    /// `cancelled` — whether a cancel request removed the queued job.
    pub fn cancelled(job: u64, ok: bool) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"cancelled\", \"job\": {job}, \
             \"ok\": {ok} }}"
        )
    }

    /// `stats` — cache + scheduler telemetry.
    pub fn stats(cache: ThermalCacheSnapshot, scheduler: SchedulerStats) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"stats\", \
             \"cache\": {{ \"models\": {}, \"hits\": {}, \"misses\": {} }}, \
             \"scheduler\": {{ \"workers\": {}, \"capacity\": {}, \"queued\": {}, \
             \"running\": {}, \"admitted\": {}, \"completed\": {}, \"failed\": {}, \
             \"cancelled\": {} }} }}",
            cache.models,
            cache.stats.hits,
            cache.stats.misses,
            scheduler.workers,
            scheduler.capacity,
            scheduler.queued,
            scheduler.running,
            scheduler.admitted,
            scheduler.completed,
            scheduler.failed,
            scheduler.cancelled,
        )
    }

    /// `metrics` — embeds an already-rendered `rlplanner.metrics/v1`
    /// registry snapshot.
    pub fn metrics(snapshot_json: &str) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"metrics\", \
             \"metrics\": {snapshot_json} }}"
        )
    }

    /// `shutdown` — acknowledgement; `draining` jobs remained at the time.
    pub fn shutdown(draining: usize) -> String {
        format!(
            "{{ \"schema\": \"{RPC_SCHEMA}\", \"type\": \"shutdown\", \"draining\": {draining} }}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "{\"a\": 1}").unwrap();
        write_frame(&mut buffer, "second").unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some("{\"a\": 1}")
        );
        assert_eq!(read_frame(&mut cursor).unwrap().as_deref(), Some("second"));
        // Clean EOF at a frame boundary is a graceful close...
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors() {
        // ...but EOF mid-frame is an error.
        let mut buffer = Vec::new();
        write_frame(&mut buffer, "truncated payload").unwrap();
        buffer.truncate(buffer.len() - 3);
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );

        // A hostile length prefix is rejected before any allocation.
        let huge = (u32::MAX).to_be_bytes().to_vec();
        let mut cursor = io::Cursor::new(huge);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn client_messages_parse_and_render() {
        let solve = ClientMessage::render_solve("{ \"schema\": \"rlplanner.request/v1\" }", 25);
        match ClientMessage::parse(&solve).unwrap() {
            ClientMessage::Solve {
                request,
                progress_every,
            } => {
                assert_eq!(progress_every, 25);
                assert_eq!(
                    request.get("schema").and_then(Value::as_str),
                    Some("rlplanner.request/v1")
                );
            }
            other => panic!("parsed as {other:?}"),
        }
        assert!(matches!(
            ClientMessage::parse(&ClientMessage::render_status(3)).unwrap(),
            ClientMessage::Status { job: 3 }
        ));
        assert!(matches!(
            ClientMessage::parse(&ClientMessage::render_cancel(9)).unwrap(),
            ClientMessage::Cancel { job: 9 }
        ));
        assert!(matches!(
            ClientMessage::parse(&ClientMessage::render_stats()).unwrap(),
            ClientMessage::Stats
        ));
        assert!(matches!(
            ClientMessage::parse(&ClientMessage::render_metrics()).unwrap(),
            ClientMessage::Metrics
        ));
        assert!(matches!(
            ClientMessage::parse(&ClientMessage::render_shutdown()).unwrap(),
            ClientMessage::Shutdown
        ));
    }

    #[test]
    fn malformed_client_messages_are_described() {
        for (payload, needle) in [
            ("not json", "at byte"),
            ("{ \"type\": \"stats\" }", "no `schema`"),
            (
                "{ \"schema\": \"rlplanner.rpc/v0\", \"type\": \"stats\" }",
                "unsupported schema",
            ),
            ("{ \"schema\": \"rlplanner.rpc/v1\" }", "no `type`"),
            (
                "{ \"schema\": \"rlplanner.rpc/v1\", \"type\": \"reboot\" }",
                "unknown message type",
            ),
            (
                "{ \"schema\": \"rlplanner.rpc/v1\", \"type\": \"cancel\", \"job\": -1 }",
                "non-negative integer",
            ),
            (
                "{ \"schema\": \"rlplanner.rpc/v1\", \"type\": \"solve\" }",
                "needs a `request`",
            ),
        ] {
            let error = ClientMessage::parse(payload).unwrap_err();
            assert!(error.contains(needle), "`{error}` lacks `{needle}`");
        }
    }

    #[test]
    fn server_frames_carry_schema_and_type() {
        let cache = rlp_thermal::ThermalCacheSnapshot::default();
        let scheduler = SchedulerStats {
            workers: 2,
            capacity: 16,
            ..SchedulerStats::default()
        };
        let timings = crate::queue::JobTimings {
            queue_wait: std::time::Duration::from_micros(410),
            run: Some(std::time::Duration::from_millis(141)),
        };
        for (frame, kind) in [
            (frames::accepted(1), "accepted"),
            (frames::busy(16), "busy"),
            (frames::error("no"), "error"),
            (frames::progress(1, 0, -2.0, -2.0), "progress"),
            (frames::outcome(1, "{}", Some(&timings)), "outcome"),
            (frames::failed(1, "oops", Some(&timings)), "failed"),
            (frames::status(1, "queued", None), "status"),
            (frames::cancelled(1, true), "cancelled"),
            (frames::stats(cache, scheduler), "stats"),
            (
                frames::metrics("{ \"schema\": \"rlplanner.metrics/v1\" }"),
                "metrics",
            ),
            (frames::shutdown(0), "shutdown"),
        ] {
            let doc = Value::parse(&frame).expect("frame renders valid JSON");
            assert_eq!(doc.get("schema").and_then(Value::as_str), Some(RPC_SCHEMA));
            assert_eq!(doc.get("type").and_then(Value::as_str), Some(kind));
        }
    }

    #[test]
    fn job_frames_carry_volatile_timings_when_known() {
        let dispatched = crate::queue::JobTimings {
            queue_wait: std::time::Duration::from_micros(410),
            run: Some(std::time::Duration::from_millis(141)),
        };
        let waiting = crate::queue::JobTimings {
            queue_wait: std::time::Duration::from_millis(13),
            run: None,
        };
        let outcome = frames::outcome(3, "{}", Some(&dispatched));
        let doc = Value::parse(&outcome).unwrap();
        assert_eq!(doc.get("queue_ms").and_then(Value::as_f64), Some(0.41));
        assert_eq!(doc.get("solve_ms").and_then(Value::as_f64), Some(141.0));
        // A queued job has no solve time yet; an unknown job has neither.
        let status = frames::status(3, "queued", Some(&waiting));
        let doc = Value::parse(&status).unwrap();
        assert_eq!(doc.get("queue_ms").and_then(Value::as_f64), Some(13.0));
        assert!(doc.get("solve_ms").is_none());
        let unknown = frames::status(9, "unknown", None);
        let doc = Value::parse(&unknown).unwrap();
        assert!(doc.get("queue_ms").is_none());
        // The embedded metrics snapshot round-trips through the parser.
        let metrics =
            frames::metrics("{ \"schema\": \"rlplanner.metrics/v1\", \"counters\": { \"a\": 1 } }");
        let doc = Value::parse(&metrics).unwrap();
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("schema"))
                .and_then(Value::as_str),
            Some("rlplanner.metrics/v1")
        );
    }
}
