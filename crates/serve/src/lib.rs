//! Floorplanning as a service: a persistent daemon over the
//! [`rlplanner`] facade.
//!
//! The crate has three layers:
//!
//! - [`protocol`] — the `rlplanner.rpc/v1` wire format: 4-byte big-endian
//!   length-prefixed JSON frames, client messages (`solve`, `status`,
//!   `cancel`, `stats`, `shutdown`) and server frames (including streamed
//!   `progress` while a job runs).
//! - [`queue`] + [`server`] — the daemon: a bounded job queue with
//!   reject-not-block backpressure feeding an N-worker pool, every worker
//!   solving through one process-wide thermal-model cache so repeat
//!   configurations skip characterisation.
//! - [`client`] — a blocking [`ServeClient`] that demultiplexes pushed job
//!   frames from request replies; both the `rlp_load` harness and the
//!   integration tests drive the daemon through it.
//!
//! Determinism contract: a fixed-seed solve through the daemon is
//! byte-identical to a direct [`rlplanner::Planner`] call on every
//! deterministic field of the outcome document — progress streaming
//! observes the solve without influencing it, and cache-served thermal
//! models are bit-identical to freshly characterised ones.

pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{ClientError, JobResult, ProgressSample, ServeClient, StatsReport, Submit};
pub use protocol::{ClientMessage, SchedulerStats, MAX_FRAME_BYTES, RPC_SCHEMA};
pub use queue::{AdmitError, JobQueue, JobState, QueueCounters};
pub use server::{Server, ServerConfig};
