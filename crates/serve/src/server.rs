//! The daemon: accept loop, connection handlers and the worker pool.
//!
//! One process-wide [`ThermalModelCache`] backs every solve, which is the
//! point of serving: the expensive fast-model characterisation runs once
//! per distinct thermal configuration and is amortised across all requests
//! (cache-served analyzers are bit-identical to freshly characterised
//! ones, so a served solve is byte-identical to a direct
//! [`rlplanner::Planner`] call on its deterministic fields).
//!
//! Threading model: the accept loop polls a non-blocking listener so it can
//! observe shutdown; each connection gets a reader thread; `workers`
//! threads pull jobs from the shared bounded [`JobQueue`]. Progress and
//! terminal frames are pushed to the submitting connection through a
//! `ConnWriter` (a mutex around the socket plus a liveness flag), so a
//! worker never races a reply and a departed connection degrades to
//! dropped frames, never a worker crash. Connection teardown cancels that
//! connection's *queued* jobs; running jobs always complete (planners have
//! no interruption points), they just lose their audience.

use crate::protocol::{self, frames, ClientMessage, SchedulerStats};
use crate::queue::{AdmitError, JobQueue, JobState};
use rlp_thermal::ThermalModelCache;
use rlplanner::report::outcome_json;
use rlplanner::{
    planner_for, request_from_value, FloorplanOutcome, FloorplanRequest, Method, PlanError,
    PolicyFile, PrebuiltThermal, PreloadedPolicy, SolveObserver,
};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How the daemon is sized; see [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on; use port 0 to let the OS pick.
    pub addr: String,
    /// Worker threads solving jobs concurrently.
    pub workers: usize,
    /// Bounded queue capacity (waiting jobs beyond the running ones).
    pub queue_capacity: usize,
    /// Optional `rlplanner.policy/v1` file to load at startup. Pretrained
    /// requests naming this exact path then solve from the in-memory copy
    /// — no per-job disk read — and a corrupt file fails the bind, not the
    /// first request.
    pub policy: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            policy: None,
        }
    }
}

/// A socket writer shared between a connection's reader thread and the
/// workers streaming that connection's job frames.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
            alive: AtomicBool::new(true),
        }
    }

    /// Writes one frame; a failed or closed connection drops the frame and
    /// marks the writer dead so later sends return immediately.
    fn send(&self, payload: &str) {
        if !self.alive.load(Ordering::Acquire) {
            return;
        }
        let mut stream = self.stream.lock().expect("connection writer poisoned");
        if protocol::write_frame(&mut *stream, payload).is_err() {
            self.alive.store(false, Ordering::Release);
        }
    }

    fn close(&self) {
        self.alive.store(false, Ordering::Release);
    }
}

/// One admitted solve.
struct Job {
    request: FloorplanRequest,
    progress_every: usize,
    writer: Arc<ConnWriter>,
    conn_id: u64,
}

struct Shared {
    queue: JobQueue<Job>,
    cache: ThermalModelCache,
    policy: Option<PreloadedPolicy>,
    workers: usize,
    shutdown: AtomicBool,
}

impl Shared {
    fn scheduler_stats(&self) -> SchedulerStats {
        let counters = self.queue.counters();
        SchedulerStats {
            workers: self.workers,
            capacity: self.queue.capacity(),
            queued: counters.queued,
            running: counters.running,
            admitted: counters.admitted,
            completed: counters.completed,
            failed: counters.failed,
            cancelled: counters.cancelled,
        }
    }
}

/// Streams every Nth candidate of a running solve to the submitting
/// connection. Observation never influences the run, so streamed and
/// silent solves produce identical outcomes.
struct ProgressStreamer {
    job: u64,
    every: usize,
    writer: Arc<ConnWriter>,
}

impl SolveObserver for ProgressStreamer {
    fn on_candidate(&mut self, index: usize, reward: f64, best_reward: f64) {
        if self.every != 0 && index.is_multiple_of(self.every) {
            self.writer
                .send(&frames::progress(self.job, index, reward, best_reward));
        }
    }
}

/// A bound-but-not-yet-running daemon; [`Server::run`] serves until a
/// client sends `shutdown`.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, sizes the worker pool and queue, and — when
    /// [`ServerConfig::policy`] is set — loads and checks the policy file
    /// up front, so a daemon that starts can actually serve it.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or an [`io::ErrorKind::InvalidData`] error
    /// when the configured policy file is unreadable or corrupt
    /// (fail-fast: a bad file is a startup error, not a per-request one).
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `queue_capacity` is zero.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        assert!(config.workers > 0, "the daemon needs at least one worker");
        let policy = match &config.policy {
            Some(path) => {
                let file = PolicyFile::load(path).map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("policy file `{path}`: {e}"),
                    )
                })?;
                let checksum = file.checksum();
                rlp_obs::obs_event!(
                    rlp_obs::Level::Info,
                    "rlp_serve",
                    "preloaded policy `{path}` (checksum {checksum:#018x})",
                    checksum = checksum,
                );
                Some(PreloadedPolicy::new(path.clone(), Arc::new(file)))
            }
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                queue: JobQueue::new(config.queue_capacity),
                cache: ThermalModelCache::new(),
                policy,
                workers: config.workers,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns the underlying socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a client requests shutdown, then drains the queue,
    /// joins the workers and returns. In-flight and queued jobs complete;
    /// only admissions stop.
    ///
    /// # Errors
    ///
    /// Returns an accept-loop I/O error (shutdown itself is `Ok`).
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.shared.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || run_worker(&shared))
            })
            .collect();
        let conn_ids = AtomicU64::new(1);
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn_id = conn_ids.fetch_add(1, Ordering::Relaxed);
                    let shared = Arc::clone(&self.shared);
                    thread::spawn(move || handle_connection(stream, &shared, conn_id));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if self.shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Idempotent if the shutdown handler already flipped it; makes the
        // drain unconditional even if run() is stopped another way.
        self.shared.queue.begin_shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn run_worker(shared: &Shared) {
    while let Some((id, job)) = shared.queue.next_job() {
        if rlp_obs::metrics_enabled() {
            rlp_obs::obs_gauge!("serve.queue.depth").set(shared.queue.counters().queued as i64);
        }
        // One span per job covering solve → serialize → flush; the
        // queue-wait leg comes from the queue's own timestamps, so the
        // full admission → flush timeline is reconstructable from the
        // span plus the VOLATILE timings on the terminal frame.
        let mut span = rlp_obs::obs_span!(
            rlp_obs::Level::Debug,
            "rlp_serve",
            "job.run",
            job = id,
            conn = job.conn_id,
        );
        // Record the terminal state before sending the terminal frame, so a
        // client that receives the frame never observes stale counters.
        let solve_timer = rlp_obs::Stopwatch::start();
        match solve_job(id, &job, shared) {
            Ok(outcome) => {
                solve_timer.stop(rlp_obs::obs_histogram!("serve.job.solve_ns"));
                let serialize_timer = rlp_obs::Stopwatch::start();
                let rendered = outcome_json(job.request.system(), &outcome);
                serialize_timer.stop(rlp_obs::obs_histogram!("serve.job.serialize_ns"));
                let timings = shared.queue.finish(id, JobState::Done);
                let flush_timer = rlp_obs::Stopwatch::start();
                job.writer
                    .send(&frames::outcome(id, &rendered, Some(&timings)));
                flush_timer.stop(rlp_obs::obs_histogram!("serve.job.flush_ns"));
                record_finished_job(&timings, true);
                span.field("state", "done");
                span.field("queue_ms", timings.queue_ms());
            }
            Err(e) => {
                let timings = shared.queue.finish(id, JobState::Failed);
                job.writer
                    .send(&frames::failed(id, &e.to_string(), Some(&timings)));
                record_finished_job(&timings, false);
                span.field("state", "failed");
                rlp_obs::obs_event!(
                    rlp_obs::Level::Warn,
                    "rlp_serve",
                    "job {id} failed: {e}",
                    job = id,
                );
            }
        }
    }
}

/// Job-level counters + the queue-wait histogram, recorded once per
/// finished job.
fn record_finished_job(timings: &crate::queue::JobTimings, ok: bool) {
    if !rlp_obs::metrics_enabled() {
        return;
    }
    let registry = rlp_obs::registry();
    registry
        .counter(if ok {
            "serve.jobs.completed"
        } else {
            "serve.jobs.failed"
        })
        .inc();
    registry
        .histogram("serve.job.queue_wait_ns")
        .record_duration(timings.queue_wait);
}

/// Solves one job against the process-wide cache; the caller renders the
/// canonical outcome document (so serialization is its own timed phase).
fn solve_job(id: u64, job: &Job, shared: &Shared) -> Result<FloorplanOutcome, PlanError> {
    let request = &job.request;
    // Route analyzer construction through the shared cache, then attach the
    // result as a prebuilt analyzer: the solve itself is unchanged, and a
    // cache-served model is bit-identical to a fresh characterisation.
    let (analyzer, prep) = request
        .thermal()
        .build_cached(request.system(), &shared.cache)?;
    let mut builder = FloorplanRequest::builder()
        .system(request.system().clone())
        .method(request.method().clone())
        .thermal(request.thermal().clone())
        .reward(request.reward().clone())
        .warm_start(request.warm_start())
        .prebuilt_thermal(PrebuiltThermal::new(
            request.thermal().clone(),
            Arc::new(analyzer),
            prep,
        ));
    if let Some(budget) = request.budget() {
        builder = builder.budget(budget);
    }
    if let Some(seed) = request.seed() {
        builder = builder.seed(seed);
    }
    if let Some(parallel_envs) = request.parallel_envs() {
        builder = builder.parallel_envs(parallel_envs);
    }
    // A pretrained request naming the daemon's preloaded policy solves
    // from the in-memory copy (the facade only uses it when the paths
    // match, so a request naming a different file still reads the disk).
    if let (Some(preloaded), Method::Pretrained { .. }) = (&shared.policy, request.method()) {
        builder = builder.preloaded_policy(preloaded.clone());
    }
    let request = builder.build()?;
    let mut observer = ProgressStreamer {
        job: id,
        every: job.progress_every,
        writer: Arc::clone(&job.writer),
    };
    planner_for(request.method()).solve_observed(&request, &mut observer)
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>, conn_id: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    rlp_obs::obs_counter!("serve.connections.opened").inc();
    let writer = Arc::new(ConnWriter::new(write_half));
    let mut reader = stream;
    // Clean close and read errors tear the connection down the same way:
    // its queued jobs are cancelled, running ones finish.
    while let Ok(Some(payload)) = protocol::read_frame(&mut reader) {
        match ClientMessage::parse(&payload) {
            Ok(message) => handle_message(message, &writer, shared, conn_id),
            Err(description) => writer.send(&frames::error(&description)),
        }
    }
    writer.close();
    let dropped = shared.queue.cancel_where(|job| job.conn_id == conn_id);
    rlp_obs::obs_counter!("serve.connections.closed").inc();
    rlp_obs::obs_counter!("serve.jobs.cancelled").add(dropped as u64);
    rlp_obs::obs_event!(
        rlp_obs::Level::Debug,
        "rlp_serve",
        "connection closed",
        conn = conn_id,
        cancelled_jobs = dropped,
    );
}

fn handle_message(
    message: ClientMessage,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
    conn_id: u64,
) {
    match message {
        ClientMessage::Solve {
            request,
            progress_every,
        } => {
            let request = match request_from_value(&request) {
                Ok(request) => request,
                Err(e) => {
                    writer.send(&frames::error(&e.to_string()));
                    return;
                }
            };
            let job = Job {
                request,
                progress_every,
                writer: Arc::clone(writer),
                conn_id,
            };
            match shared.queue.admit(job) {
                Ok(id) => {
                    rlp_obs::obs_counter!("serve.jobs.admitted").inc();
                    if rlp_obs::metrics_enabled() {
                        rlp_obs::obs_gauge!("serve.queue.depth")
                            .set(shared.queue.counters().queued as i64);
                    }
                    rlp_obs::obs_event!(
                        rlp_obs::Level::Debug,
                        "rlp_serve",
                        "job admitted",
                        job = id,
                        conn = conn_id,
                    );
                    writer.send(&frames::accepted(id));
                }
                Err(AdmitError::Busy { capacity }) => {
                    rlp_obs::obs_counter!("serve.jobs.rejected").inc();
                    writer.send(&frames::busy(capacity));
                }
                Err(AdmitError::ShuttingDown) => {
                    writer.send(&frames::error("daemon is shutting down"));
                }
            }
        }
        ClientMessage::Status { job } => {
            let state = shared.queue.state(job).map_or("unknown", JobState::label);
            let timings = shared.queue.timings(job);
            writer.send(&frames::status(job, state, timings.as_ref()));
        }
        ClientMessage::Cancel { job } => {
            let removed = shared.queue.cancel(job);
            if removed {
                rlp_obs::obs_counter!("serve.jobs.cancelled").inc();
            }
            writer.send(&frames::cancelled(job, removed));
        }
        ClientMessage::Stats => {
            writer.send(&frames::stats(
                shared.cache.snapshot(),
                shared.scheduler_stats(),
            ));
        }
        ClientMessage::Metrics => {
            writer.send(&frames::metrics(
                &rlp_obs::registry().snapshot().render_json(),
            ));
        }
        ClientMessage::Shutdown => {
            let draining = shared.queue.begin_shutdown();
            shared.shutdown.store(true, Ordering::Release);
            writer.send(&frames::shutdown(draining));
        }
    }
}
