//! The bounded job queue behind the daemon's worker pool.
//!
//! [`JobQueue`] is the scheduler's single synchronisation point: admission
//! (with backpressure — a full queue *rejects* instead of blocking, which
//! becomes the protocol's `busy` frame), worker dispatch, cancellation of
//! queued jobs, per-job lifecycle states for `status`, and graceful
//! shutdown (stop admitting, drain what is queued, wake every worker).
//! Job ids are assigned at admission and never reused.
//!
//! Running jobs are deliberately not cancellable: the planners have no
//! interruption points mid-solve, so `cancel` only removes jobs still
//! waiting in the queue — the same contract connection teardown uses for
//! the departed connection's queued jobs.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of a job, as reported by the protocol's `status` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with an outcome.
    Done,
    /// Finished with a solve error.
    Failed,
    /// Removed from the queue before running.
    Cancelled,
}

impl JobState {
    /// The stable label the `status` frame carries.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Wall-clock milestones of one job's lifecycle, measured by the queue
/// from its admission/dispatch/finish timestamps. These feed the VOLATILE
/// `queue_ms`/`solve_ms` fields of the protocol's job frames and the
/// `serve.job.*` histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTimings {
    /// Admission → worker dispatch (still growing for a queued job).
    pub queue_wait: Duration,
    /// Dispatch → finish (`None` until dispatched; still growing while
    /// running).
    pub run: Option<Duration>,
}

impl JobTimings {
    /// Queue wait in fractional milliseconds.
    pub fn queue_ms(&self) -> f64 {
        self.queue_wait.as_secs_f64() * 1e3
    }

    /// Run time in fractional milliseconds, if dispatched.
    pub fn solve_ms(&self) -> Option<f64> {
        self.run.map(|d| d.as_secs_f64() * 1e3)
    }
}

/// Why [`JobQueue::admit`] rejected a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity; retry later (the `busy` frame).
    Busy {
        /// The queue's capacity, echoed to the client.
        capacity: usize,
    },
    /// The daemon is shutting down and admits nothing new.
    ShuttingDown,
}

/// Point-in-time queue counters (the scheduler half of the `stats` frame).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Jobs currently waiting.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Jobs ever admitted.
    pub admitted: usize,
    /// Jobs finished with an outcome.
    pub completed: usize,
    /// Jobs finished with an error.
    pub failed: usize,
    /// Jobs cancelled while queued.
    pub cancelled: usize,
}

/// Per-job lifecycle record: the state plus the timestamps [`JobTimings`]
/// are derived from.
struct JobInfo {
    state: JobState,
    admitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
}

impl JobInfo {
    fn timings(&self, now: Instant) -> JobTimings {
        let dispatched = self.started.unwrap_or_else(|| self.finished.unwrap_or(now));
        JobTimings {
            queue_wait: dispatched.saturating_duration_since(self.admitted),
            run: self.started.map(|started| {
                self.finished
                    .unwrap_or(now)
                    .saturating_duration_since(started)
            }),
        }
    }
}

struct QueueInner<T> {
    queue: VecDeque<(u64, T)>,
    states: HashMap<u64, JobInfo>,
    next_id: u64,
    shutting_down: bool,
    counters: QueueCounters,
}

impl<T> QueueInner<T> {
    fn set_state(&mut self, id: u64, state: JobState) {
        let now = Instant::now();
        match self.states.get_mut(&id) {
            Some(info) => {
                info.state = state;
                match state {
                    JobState::Running => info.started = Some(now),
                    JobState::Done | JobState::Failed | JobState::Cancelled => {
                        info.finished = Some(now);
                    }
                    JobState::Queued => {}
                }
            }
            None => {
                self.states.insert(
                    id,
                    JobInfo {
                        state,
                        admitted: now,
                        started: None,
                        finished: None,
                    },
                );
            }
        }
    }
}

/// A bounded multi-producer multi-consumer job queue; see the
/// [module docs](self).
pub struct JobQueue<T> {
    inner: Mutex<QueueInner<T>>,
    job_ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` waiting jobs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — the daemon could never admit work.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the job queue needs capacity for at least one job"
        );
        JobQueue {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                states: HashMap::new(),
                next_id: 1,
                shutting_down: false,
                counters: QueueCounters::default(),
            }),
            job_ready: Condvar::new(),
            capacity,
        }
    }

    /// The queue's capacity (waiting jobs; running jobs do not count).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, assigning the next id, or rejects it with
    /// backpressure.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Busy`] when the queue is full, or
    /// [`AdmitError::ShuttingDown`] after [`JobQueue::begin_shutdown`].
    pub fn admit(&self, payload: T) -> Result<u64, AdmitError> {
        let mut inner = self.lock();
        if inner.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if inner.queue.len() >= self.capacity {
            return Err(AdmitError::Busy {
                capacity: self.capacity,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.queue.push_back((id, payload));
        inner.set_state(id, JobState::Queued);
        inner.counters.admitted += 1;
        drop(inner);
        self.job_ready.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available and claims it (marking it running),
    /// or returns `None` once the queue is shut down *and* drained — the
    /// worker-loop exit condition.
    pub fn next_job(&self) -> Option<(u64, T)> {
        let mut inner = self.lock();
        loop {
            if let Some((id, payload)) = inner.queue.pop_front() {
                inner.set_state(id, JobState::Running);
                inner.counters.running += 1;
                return Some((id, payload));
            }
            if inner.shutting_down {
                return None;
            }
            inner = self.job_ready.wait(inner).expect("job queue lock poisoned");
        }
    }

    /// Records a claimed job's terminal state ([`JobState::Done`] or
    /// [`JobState::Failed`]) and returns its final timings.
    ///
    /// # Panics
    ///
    /// Panics if `state` is not terminal-from-running, which would corrupt
    /// the counters.
    pub fn finish(&self, id: u64, state: JobState) -> JobTimings {
        assert!(
            matches!(state, JobState::Done | JobState::Failed),
            "finish() only records done/failed"
        );
        let mut inner = self.lock();
        inner.set_state(id, state);
        inner.counters.running -= 1;
        match state {
            JobState::Done => inner.counters.completed += 1,
            _ => inner.counters.failed += 1,
        }
        let now = Instant::now();
        inner
            .states
            .get(&id)
            .map(|info| info.timings(now))
            .expect("finish() follows next_job(), which recorded the job")
    }

    /// Cancels a job if it is still queued; returns whether it was removed.
    /// Running and finished jobs are untouched (and return `false`).
    pub fn cancel(&self, id: u64) -> bool {
        let mut inner = self.lock();
        let Some(index) = inner.queue.iter().position(|(job, _)| *job == id) else {
            return false;
        };
        inner.queue.remove(index);
        inner.set_state(id, JobState::Cancelled);
        inner.counters.cancelled += 1;
        true
    }

    /// Cancels every queued job matching `predicate` — how connection
    /// teardown drops the departed connection's pending work. Returns the
    /// number cancelled.
    pub fn cancel_where(&self, predicate: impl Fn(&T) -> bool) -> usize {
        let mut inner = self.lock();
        let mut cancelled = Vec::new();
        inner.queue.retain(|(id, payload)| {
            if predicate(payload) {
                cancelled.push(*id);
                false
            } else {
                true
            }
        });
        for id in &cancelled {
            inner.set_state(*id, JobState::Cancelled);
        }
        inner.counters.cancelled += cancelled.len();
        cancelled.len()
    }

    /// A job's lifecycle state, or `None` for an id never admitted.
    pub fn state(&self, id: u64) -> Option<JobState> {
        self.lock().states.get(&id).map(|info| info.state)
    }

    /// A job's wall-clock timings so far, or `None` for an id never
    /// admitted. Queued and running jobs report partial (still growing)
    /// values; finished jobs report final ones.
    pub fn timings(&self, id: u64) -> Option<JobTimings> {
        let now = Instant::now();
        self.lock().states.get(&id).map(|info| info.timings(now))
    }

    /// Point-in-time counters for the `stats` frame.
    pub fn counters(&self) -> QueueCounters {
        let inner = self.lock();
        QueueCounters {
            queued: inner.queue.len(),
            ..inner.counters
        }
    }

    /// Stops admissions and wakes every waiting worker; already-queued jobs
    /// still drain. Returns the number of jobs remaining (queued + running)
    /// at this moment — the `draining` count of the shutdown ack.
    pub fn begin_shutdown(&self) -> usize {
        let mut inner = self.lock();
        inner.shutting_down = true;
        let draining = inner.queue.len() + inner.counters.running;
        drop(inner);
        self.job_ready.notify_all();
        draining
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner<T>> {
        self.inner.lock().expect("job queue lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn admission_assigns_sequential_ids_and_rejects_when_full() {
        let queue = JobQueue::new(2);
        assert_eq!(queue.admit("a"), Ok(1));
        assert_eq!(queue.admit("b"), Ok(2));
        assert_eq!(queue.admit("c"), Err(AdmitError::Busy { capacity: 2 }));
        // Dispatching one frees a slot; ids keep counting up.
        assert_eq!(queue.next_job(), Some((1, "a")));
        assert_eq!(queue.admit("c"), Ok(3));
        let counters = queue.counters();
        assert_eq!(
            (counters.admitted, counters.queued, counters.running),
            (3, 2, 1)
        );
    }

    #[test]
    fn lifecycle_states_follow_the_job() {
        let queue = JobQueue::new(4);
        let id = queue.admit(()).unwrap();
        assert_eq!(queue.state(id), Some(JobState::Queued));
        assert_eq!(queue.state(99), None);
        let (claimed, ()) = queue.next_job().unwrap();
        assert_eq!(claimed, id);
        assert_eq!(queue.state(id), Some(JobState::Running));
        // A running job cannot be cancelled.
        assert!(!queue.cancel(id));
        queue.finish(id, JobState::Done);
        assert_eq!(queue.state(id), Some(JobState::Done));
        assert_eq!(queue.counters().completed, 1);
    }

    #[test]
    fn timings_follow_the_job_lifecycle() {
        let queue = JobQueue::new(4);
        let id = queue.admit(()).unwrap();
        let queued = queue.timings(id).unwrap();
        assert!(queued.run.is_none(), "not dispatched yet");
        assert!(queue.timings(999).is_none(), "unknown id");
        let (claimed, ()) = queue.next_job().unwrap();
        assert_eq!(claimed, id);
        thread::sleep(Duration::from_millis(2));
        let running = queue.timings(id).unwrap();
        assert!(
            running.run.is_some(),
            "running jobs report partial run time"
        );
        let final_timings = queue.finish(id, JobState::Done);
        assert!(final_timings.run.unwrap() >= Duration::from_millis(2));
        assert!(final_timings.solve_ms().unwrap() >= 2.0);
        // Timings freeze at the recorded timestamps once the job finished.
        assert_eq!(queue.timings(id), Some(final_timings));
    }

    #[test]
    fn cancel_removes_only_queued_jobs() {
        let queue = JobQueue::new(4);
        let keep = queue.admit("keep").unwrap();
        let drop_ = queue.admit("drop").unwrap();
        assert!(queue.cancel(drop_));
        assert!(!queue.cancel(drop_), "double cancel is a no-op");
        assert_eq!(queue.state(drop_), Some(JobState::Cancelled));
        assert_eq!(queue.next_job(), Some((keep, "keep")));
        assert_eq!(queue.counters().cancelled, 1);
    }

    #[test]
    fn cancel_where_drops_a_connections_jobs() {
        let queue = JobQueue::new(8);
        queue.admit(("conn-a", 1)).unwrap();
        queue.admit(("conn-b", 2)).unwrap();
        queue.admit(("conn-a", 3)).unwrap();
        assert_eq!(queue.cancel_where(|(conn, _)| *conn == "conn-a"), 2);
        assert_eq!(queue.counters().queued, 1);
        assert_eq!(queue.counters().cancelled, 2);
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_releases_workers() {
        let queue = Arc::new(JobQueue::new(8));
        queue.admit(1).unwrap();
        queue.admit(2).unwrap();
        // Shut down before any worker runs so the draining count is exact.
        assert_eq!(queue.begin_shutdown(), 2);
        assert_eq!(queue.admit(3), Err(AdmitError::ShuttingDown));
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some((id, payload)) = queue.next_job() {
                    seen.push(payload);
                    queue.finish(id, JobState::Done);
                }
                seen
            })
        };
        // The worker drains both queued jobs, then exits on the flag.
        assert_eq!(worker.join().unwrap(), vec![1, 2]);
        assert_eq!(queue.counters().completed, 2);
    }

    #[test]
    fn blocked_workers_wake_for_new_jobs_and_for_shutdown() {
        let queue = Arc::new(JobQueue::new(4));
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut seen = 0;
                while let Some((id, ())) = queue.next_job() {
                    seen += 1;
                    queue.finish(id, JobState::Done);
                }
                seen
            })
        };
        // The worker is (eventually) parked on the condvar; admission wakes
        // it, then shutdown releases it.
        queue.admit(()).unwrap();
        while queue.counters().completed == 0 {
            thread::yield_now();
        }
        queue.begin_shutdown();
        assert_eq!(worker.join().unwrap(), 1);
    }
}
