//! `rlp_load` — load-test harness and request generator for `rlp_serve`.
//!
//! ```text
//! rlp_load <addr> [--clients <n>] [--requests <m>] [--system <s>]
//!          [--method <m>] [--budget <n>] [--seed <n>] [--warm-start]
//!          [--progress-every <k>] [--save-json <path>] [--metrics]
//!          [--shutdown]
//!
//!   <addr>            daemon address, e.g. 127.0.0.1:7878
//!   --clients         concurrent client connections        (default 4)
//!   --requests        solve requests per client            (default 8)
//!   --system          multi-gpu | cpu-dram | ascend910 | case1..case5
//!                                                          (default case1)
//!   --method          rl | rl-rnd | sa-hotspot | sa-fast | gradient
//!                                                          (default sa-fast)
//!   --budget          candidate floorplans per request     (default 60)
//!   --seed            fixed request seed (default: the method's own)
//!   --warm-start      gradient-presolve each request's SA/RL solve
//!   --progress-every  stream every Nth candidate           (default 0, off)
//!   --save-json       append p50/p99 latency + throughput as
//!                     `rlplanner.bench/v1` shard lines to <path>
//!   --metrics         fetch the daemon's `rlplanner.metrics/v1` snapshot
//!                     after the run and print it to stdout
//!   --shutdown        send a graceful shutdown after the run
//!
//! rlp_load print-request <system> <method> [budget] [--seed <n>]
//!                        [--warm-start]
//!
//!   prints the `rlplanner.request/v1` document the load run would submit —
//!   the same system/method mapping as `rlplanner_cli`, so a daemon solve
//!   of this document is byte-comparable to a direct CLI `--json` run.
//! ```
//!
//! Every client thread submits its requests sequentially; a `busy` answer
//! (the daemon's backpressure) is retried with linear backoff and counted,
//! never treated as a failure. Latency is measured client-side from first
//! submission attempt to the outcome frame, so it includes queueing and
//! backpressure delay. The run exits nonzero if any request ultimately
//! failed.

use rlp_benchmarks::{ascend910_system, cpu_dram_system, multi_gpu_system, synthetic_case};
use rlp_chiplet::ChipletSystem;
use rlp_sa::SaConfig;
use rlp_serve::{ClientError, ServeClient, Submit};
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::report::request_json;
use rlplanner::{Budget, FloorplanRequest, Method};
use std::process::ExitCode;
use std::thread;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: rlp_load <addr> [--clients <n>] [--requests <m>] [--system <s>] \
         [--method <m>] [--budget <n>] [--seed <n>] [--warm-start] \
         [--progress-every <k>] [--save-json <path>] [--metrics] [--shutdown]\n\
         \x20      rlp_load print-request <system> <method> [budget] [--seed <n>] \
         [--warm-start]"
    );
    ExitCode::from(2)
}

fn load_system(name: &str) -> Option<ChipletSystem> {
    match name {
        "multi-gpu" => Some(multi_gpu_system()),
        "cpu-dram" => Some(cpu_dram_system()),
        "ascend910" => Some(ascend910_system()),
        _ => name
            .strip_prefix("case")
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|n| (1..=5).contains(n))
            .map(synthetic_case),
    }
}

/// The same method → (Method, ThermalBackend) mapping as `rlplanner_cli`,
/// so served and direct solves are byte-comparable.
fn load_method(name: &str) -> Option<(Method, ThermalBackend)> {
    let thermal_config = ThermalConfig::with_grid(32, 32);
    let fast = ThermalBackend::Fast {
        config: thermal_config.clone(),
        characterization: CharacterizationOptions::default(),
    };
    let sa = Method::Sa {
        config: SaConfig {
            final_temperature: 1e-6,
            ..SaConfig::default()
        },
    };
    match name {
        "rl" => Some((Method::rl(), fast)),
        "rl-rnd" => Some((Method::rl_rnd(), fast)),
        "sa-fast" => Some((sa, fast)),
        "sa-hotspot" => Some((
            sa,
            ThermalBackend::Grid {
                config: thermal_config,
            },
        )),
        "gradient" => Some((Method::gradient(), fast)),
        _ => None,
    }
}

fn build_request(
    system: &str,
    method: &str,
    budget: usize,
    seed: Option<u64>,
    warm_start: bool,
) -> Result<FloorplanRequest, String> {
    let system = load_system(system).ok_or_else(|| format!("unknown system `{system}`"))?;
    let (method, thermal) =
        load_method(method).ok_or_else(|| format!("unknown method `{method}`"))?;
    let mut builder = FloorplanRequest::builder()
        .system(system)
        .method(method)
        .thermal(thermal)
        .budget(Budget::Evaluations(budget))
        .warm_start(warm_start);
    if let Some(seed) = seed {
        builder = builder.seed(seed);
    }
    builder.build().map_err(|e| format!("invalid request: {e}"))
}

struct LoadArgs {
    addr: String,
    clients: usize,
    requests: usize,
    system: String,
    method: String,
    budget: usize,
    seed: Option<u64>,
    warm_start: bool,
    progress_every: usize,
    save_json: Option<String>,
    metrics: bool,
    shutdown: bool,
}

fn parse_load_args(args: &[String]) -> Result<LoadArgs, String> {
    let mut iter = args.iter();
    let addr = iter
        .next()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing daemon address")?
        .clone();
    let mut parsed = LoadArgs {
        addr,
        clients: 4,
        requests: 8,
        system: "case1".to_string(),
        method: "sa-fast".to_string(),
        budget: 60,
        seed: None,
        warm_start: false,
        progress_every: 0,
        save_json: None,
        metrics: false,
        shutdown: false,
    };
    while let Some(arg) = iter.next() {
        let Some(rest) = arg.strip_prefix("--") else {
            return Err(format!("unexpected argument `{arg}`"));
        };
        let (flag, inline) = match rest.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (rest, None),
        };
        if flag == "shutdown" || flag == "metrics" || flag == "warm-start" {
            if inline.is_some() {
                return Err(format!("--{flag} takes no value"));
            }
            match flag {
                "shutdown" => parsed.shutdown = true,
                "metrics" => parsed.metrics = true,
                _ => parsed.warm_start = true,
            }
            continue;
        }
        let value = inline
            .or_else(|| iter.next().cloned())
            .ok_or_else(|| format!("flag `--{flag}` needs a value"))?;
        let positive = |value: &str, what: &str| {
            value
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("invalid {what} `{value}`: expected a positive integer"))
        };
        match flag {
            "clients" => parsed.clients = positive(&value, "client count")?,
            "requests" => parsed.requests = positive(&value, "request count")?,
            "system" => parsed.system = value,
            "method" => parsed.method = value,
            "budget" => parsed.budget = positive(&value, "budget")?,
            "seed" => {
                parsed.seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("invalid seed `{value}`: expected an integer"))?,
                );
            }
            "progress-every" => {
                parsed.progress_every = value
                    .parse::<usize>()
                    .map_err(|_| format!("invalid stride `{value}`"))?;
            }
            "save-json" => parsed.save_json = Some(value),
            other => return Err(format!("unknown flag `--{other}`")),
        }
    }
    Ok(parsed)
}

/// One client's tally: per-request latencies, busy retries, failures.
#[derive(Default)]
struct ClientTally {
    latencies: Vec<Duration>,
    busy_retries: usize,
    failures: Vec<String>,
}

fn run_client(
    addr: &str,
    request_json: &str,
    requests: usize,
    progress_every: usize,
) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client = match ServeClient::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            tally.failures.push(format!("connect: {e}"));
            return tally;
        }
    };
    for _ in 0..requests {
        let started = Instant::now();
        let mut backoff = 1u64;
        let job = loop {
            match client.submit(request_json, progress_every) {
                Ok(Submit::Accepted(job)) => break Ok(job),
                Ok(Submit::Busy { .. }) => {
                    // Backpressure: the queue was full. Linear backoff keeps
                    // retries cheap without hammering the daemon.
                    tally.busy_retries += 1;
                    thread::sleep(Duration::from_millis(backoff.min(50)));
                    backoff += 5;
                }
                Err(e) => break Err(e),
            }
        };
        match job.and_then(|job| client.wait_outcome(job)) {
            Ok(_) => tally.latencies.push(started.elapsed()),
            Err(e) => tally.failures.push(e.to_string()),
        }
    }
    tally
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index]
}

/// One `rlplanner.bench/v1` shard line for a single latency percentile.
///
/// A percentile shard carries exactly one statistic, so every summary
/// field is that value; `samples` records how many requests the
/// percentile was extracted from. (Copying the whole distribution's
/// mean/min/max into both the p50 and p99 shards — as an earlier version
/// did — made the two rows describe overlapping, inconsistent
/// distributions.)
fn shard_line(id: &str, value_ns: f64, samples: usize) -> String {
    format!(
        "{{ \"id\": \"{id}\", \"median_ns\": {value_ns}, \"mean_ns\": {value_ns}, \
         \"min_ns\": {value_ns}, \"max_ns\": {value_ns}, \"samples\": {samples} }}"
    )
}

fn run_load(args: &LoadArgs) -> ExitCode {
    let request = match build_request(
        &args.system,
        &args.method,
        args.budget,
        args.seed,
        args.warm_start,
    ) {
        Ok(request) => request,
        Err(reason) => {
            eprintln!("{reason}");
            return usage();
        }
    };
    let document = request_json(&request);

    let started = Instant::now();
    let tallies: Vec<ClientTally> = thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let (addr, document) = (&args.addr, &document);
                scope.spawn(move || run_client(addr, document, args.requests, args.progress_every))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<Duration> = tallies.iter().flat_map(|t| t.latencies.clone()).collect();
    let busy_retries: usize = tallies.iter().map(|t| t.busy_retries).sum();
    let failures: Vec<&String> = tallies.iter().flat_map(|t| &t.failures).collect();
    let total = args.clients * args.requests;

    // Fetch metrics before any shutdown: the snapshot lives in the
    // daemon's process, and covers the whole load run just completed.
    if args.metrics {
        match ServeClient::connect(&args.addr) {
            Ok(mut client) => match client.metrics() {
                Ok(snapshot) => println!("{}", snapshot.render()),
                Err(e) => eprintln!("metrics request failed: {e}"),
            },
            Err(e) => eprintln!("metrics connection failed: {e}"),
        }
    }

    if args.shutdown {
        match ServeClient::connect(&args.addr).map_err(ClientError::Io) {
            Ok(mut client) => {
                if let Err(e) = client.shutdown() {
                    eprintln!("shutdown request failed: {e}");
                }
            }
            Err(e) => eprintln!("shutdown connection failed: {e}"),
        }
    }

    if latencies.is_empty() {
        eprintln!("all {total} request(s) failed:");
        for failure in failures.iter().take(5) {
            eprintln!("  {failure}");
        }
        return ExitCode::FAILURE;
    }
    latencies.sort();
    let ns = |d: Duration| d.as_nanos() as f64;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let mean = latencies.iter().map(|&d| ns(d)).sum::<f64>() / latencies.len() as f64;
    let (min, max) = (latencies[0], latencies[latencies.len() - 1]);
    let throughput = latencies.len() as f64 / wall.as_secs_f64();

    println!(
        "{} clients x {} requests against {} ({} {} budget {}): \
         {} ok, {} failed, {} busy retr{} in {:.2?}",
        args.clients,
        args.requests,
        args.addr,
        args.system,
        args.method,
        args.budget,
        latencies.len(),
        failures.len(),
        busy_retries,
        if busy_retries == 1 { "y" } else { "ies" },
        wall,
    );
    println!(
        "latency p50 {:.2?}  p99 {:.2?}  mean {:.2?}  min {:.2?}  max {:.2?}  |  {:.1} solves/s",
        p50,
        p99,
        Duration::from_secs_f64(mean / 1e9),
        min,
        max,
        throughput
    );

    if let Some(path) = &args.save_json {
        let prefix = format!("rlp_serve/solve_{}_{}", args.system, args.method);
        let shards = format!(
            "{}\n{}\n",
            shard_line(&format!("{prefix}/p50"), ns(p50), latencies.len()),
            shard_line(&format!("{prefix}/p99"), ns(p99), latencies.len()),
        );
        if let Err(e) = append(path, &shards) {
            eprintln!("cannot append shards to `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("appended 2 shard line(s) to `{path}`");
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} request(s) failed:", failures.len());
        for failure in failures.iter().take(5) {
            eprintln!("  {failure}");
        }
        ExitCode::FAILURE
    }
}

fn append(path: &str, text: &str) -> std::io::Result<()> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(text.as_bytes())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("print-request") {
        let mut positional: Vec<&String> = Vec::new();
        let mut seed = None;
        let mut warm_start = false;
        let mut iter = args[1..].iter();
        while let Some(arg) = iter.next() {
            let Some(rest) = arg.strip_prefix("--") else {
                positional.push(arg);
                continue;
            };
            let (flag, inline) = match rest.split_once('=') {
                Some((flag, value)) => (flag, Some(value.to_string())),
                None => (rest, None),
            };
            if flag == "warm-start" {
                if inline.is_some() {
                    eprintln!("--warm-start takes no value");
                    return usage();
                }
                warm_start = true;
                continue;
            }
            if flag != "seed" {
                eprintln!("unknown flag `--{flag}`");
                return usage();
            }
            let Some(value) = inline.or_else(|| iter.next().cloned()) else {
                eprintln!("--seed needs a value");
                return usage();
            };
            seed = match value.parse::<u64>() {
                Ok(seed) => Some(seed),
                Err(_) => {
                    eprintln!("invalid seed `{value}`: expected an integer");
                    return usage();
                }
            };
        }
        if !(2..=3).contains(&positional.len()) {
            return usage();
        }
        let budget = match positional.get(2) {
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("invalid budget `{raw}`: expected a positive integer");
                    return usage();
                }
            },
            None => 100,
        };
        return match build_request(positional[0], positional[1], budget, seed, warm_start) {
            Ok(request) => {
                println!("{}", request_json(&request));
                ExitCode::SUCCESS
            }
            Err(reason) => {
                eprintln!("{reason}");
                usage()
            }
        };
    }

    match parse_load_args(&args) {
        Ok(parsed) => run_load(&parsed),
        Err(reason) => {
            eprintln!("{reason}");
            usage()
        }
    }
}
