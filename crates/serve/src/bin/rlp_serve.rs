//! `rlp_serve` — the floorplanning daemon.
//!
//! ```text
//! rlp_serve [--addr <host:port>] [--workers <n>] [--capacity <n>]
//!           [--policy <path>]
//!           [--log-level <off|error|warn|info|debug|trace>]
//!
//!   --addr       listen address (default 127.0.0.1:7878; port 0 lets the
//!                OS pick — the resolved address is printed either way)
//!   --workers    solver threads sharing one thermal-model cache (default 2)
//!   --capacity   bounded job-queue capacity; a full queue answers `busy`
//!                (default 16)
//!   --policy     `rlplanner.policy/v1` file to preload; pretrained
//!                requests naming this path solve from the in-memory copy
//!                with zero training episodes. A corrupt or unreadable
//!                file fails startup, not the first request
//!   --log-level  structured-log filter (default `info`; overrides the
//!                `RLP_LOG` environment variable)
//! ```
//!
//! On startup the daemon logs one readiness line to **stderr** through the
//! structured logger (at `info`, so `--log-level off` suppresses it):
//!
//! ```text
//! [   0.001234s INFO  rlp_serve] rlp-serve listening on 127.0.0.1:7878 (workers=2, capacity=16)
//! ```
//!
//! Scripts should wait for the `rlp-serve listening on <addr>` substring.
//! The daemon then serves `rlplanner.rpc/v1` until a client sends
//! `shutdown`, which drains in-flight jobs and exits 0. See the
//! `rlp_serve::protocol` docs for the wire format.
//!
//! The process-wide metrics registry is **enabled by default** (the
//! `metrics` RPC returns a populated `rlplanner.metrics/v1` snapshot);
//! `RLP_METRICS=0` turns it off. `RLP_TRACE=<path>` additionally mirrors
//! events and spans to a JSONL trace file.

use rlp_serve::{Server, ServerConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rlp_serve [--addr <host:port>] [--workers <n>] [--capacity <n>] \
         [--policy <path>] [--log-level <filter>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // Daemon defaults: metrics on (the `metrics` RPC should answer with
    // real data out of the box) and `info` logging (the readiness line).
    // `init_from_env` lets `RLP_METRICS`/`RLP_LOG`/`RLP_TRACE` override,
    // and an explicit `--log-level` flag overrides the environment.
    rlp_obs::set_metrics_enabled(true);
    rlp_obs::set_max_level(Some(rlp_obs::Level::Info));
    if let Err(e) = rlp_obs::init_from_env() {
        eprintln!("{e}");
        return ExitCode::from(2);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(rest) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument `{arg}`");
            return usage();
        };
        let (flag, inline) = match rest.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (rest, None),
        };
        let Some(value) = inline.or_else(|| iter.next().cloned()) else {
            eprintln!("flag `--{flag}` needs a value");
            return usage();
        };
        match flag {
            "addr" => config.addr = value,
            "workers" => match value.parse::<usize>() {
                Ok(n) if n > 0 => config.workers = n,
                _ => {
                    eprintln!("invalid worker count `{value}`: expected a positive integer");
                    return usage();
                }
            },
            "capacity" => match value.parse::<usize>() {
                Ok(n) if n > 0 => config.queue_capacity = n,
                _ => {
                    eprintln!("invalid capacity `{value}`: expected a positive integer");
                    return usage();
                }
            },
            "policy" => {
                if value.is_empty() {
                    eprintln!("--policy needs a non-empty path");
                    return usage();
                }
                config.policy = Some(value);
            }
            "log-level" => match rlp_obs::Level::parse_filter(&value) {
                Ok(filter) => rlp_obs::set_max_level(filter),
                Err(e) => {
                    eprintln!("invalid --log-level: {e}");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown flag `--{other}`");
                return usage();
            }
        }
    }

    let (workers, capacity) = (config.workers, config.queue_capacity);
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // The readiness line scripts wait for (on stderr, unbuffered,
            // so a piped reader sees it before the first connection).
            rlp_obs::obs_event!(
                rlp_obs::Level::Info,
                "rlp_serve",
                "rlp-serve listening on {addr} (workers={workers}, capacity={capacity})",
                workers = workers,
                capacity = capacity,
            );
        }
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            rlp_obs::obs_event!(
                rlp_obs::Level::Info,
                "rlp_serve",
                "rlp-serve drained and shut down",
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
