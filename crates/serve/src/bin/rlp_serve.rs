//! `rlp_serve` — the floorplanning daemon.
//!
//! ```text
//! rlp_serve [--addr <host:port>] [--workers <n>] [--capacity <n>]
//!
//!   --addr      listen address (default 127.0.0.1:7878; port 0 lets the
//!               OS pick — the resolved address is printed either way)
//!   --workers   solver threads sharing one thermal-model cache (default 2)
//!   --capacity  bounded job-queue capacity; a full queue answers `busy`
//!               (default 16)
//! ```
//!
//! On startup the daemon prints one readiness line to stdout:
//!
//! ```text
//! rlp-serve listening on 127.0.0.1:7878 (workers=2, capacity=16)
//! ```
//!
//! and then serves `rlplanner.rpc/v1` until a client sends `shutdown`,
//! which drains in-flight jobs and exits 0. See the `rlp_serve::protocol`
//! docs for the wire format.

use rlp_serve::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: rlp_serve [--addr <host:port>] [--workers <n>] [--capacity <n>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(rest) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument `{arg}`");
            return usage();
        };
        let (flag, inline) = match rest.split_once('=') {
            Some((flag, value)) => (flag, Some(value.to_string())),
            None => (rest, None),
        };
        let Some(value) = inline.or_else(|| iter.next().cloned()) else {
            eprintln!("flag `--{flag}` needs a value");
            return usage();
        };
        match flag {
            "addr" => config.addr = value,
            "workers" => match value.parse::<usize>() {
                Ok(n) if n > 0 => config.workers = n,
                _ => {
                    eprintln!("invalid worker count `{value}`: expected a positive integer");
                    return usage();
                }
            },
            "capacity" => match value.parse::<usize>() {
                Ok(n) if n > 0 => config.queue_capacity = n,
                _ => {
                    eprintln!("invalid capacity `{value}`: expected a positive integer");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown flag `--{other}`");
                return usage();
            }
        }
    }

    let (workers, capacity) = (config.workers, config.queue_capacity);
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // The readiness line scripts wait for; flushed so a piped
            // reader sees it before the first connection.
            println!("rlp-serve listening on {addr} (workers={workers}, capacity={capacity})");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot resolve listen address: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => {
            eprintln!("rlp-serve drained and shut down");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
