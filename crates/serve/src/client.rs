//! A blocking client for the `rlplanner.rpc/v1` protocol.
//!
//! [`ServeClient`] wraps one TCP connection and handles the protocol's one
//! wrinkle: job-lifecycle frames (`progress`, `outcome`, `failed`) are
//! pushed by worker threads and may arrive interleaved with the reply to
//! any request, so every receive path demultiplexes — frames that answer
//! the pending request are consumed, job frames for other work are stashed
//! and replayed by [`ServeClient::wait_outcome`].

use crate::protocol::{self, ClientMessage, SchedulerStats, RPC_SCHEMA};
use rlplanner::minijson::Value;
use std::collections::VecDeque;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (including the daemon closing mid-reply).
    Io(io::Error),
    /// The daemon sent a frame the client cannot interpret.
    Protocol(String),
    /// The daemon reported an error (`error` frame, or `failed` while
    /// waiting for an outcome).
    Remote(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Remote(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// The daemon's answer to a `solve` submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Admitted under this job id.
    Accepted(u64),
    /// Rejected with backpressure: the queue (of this capacity) was full.
    Busy {
        /// The daemon's queue capacity, echoed from the `busy` frame.
        capacity: usize,
    },
}

/// One streamed progress sample from a running job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSample {
    /// Candidate index within the solve (episode or SA evaluation).
    pub candidate: usize,
    /// The candidate's reward/objective.
    pub reward: f64,
    /// Best reward seen so far.
    pub best_reward: f64,
}

/// A finished job: its outcome document plus any progress seen on the way.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The embedded `rlplanner.outcome/v1` document.
    pub outcome: Value,
    /// Progress samples streamed while the job ran (empty unless the solve
    /// was submitted with a non-zero `progress_every`).
    pub progress: Vec<ProgressSample>,
}

/// Cache + scheduler telemetry from a `stats` frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Distinct thermal models held by the daemon's shared cache.
    pub cache_models: usize,
    /// Cache hits since the daemon started.
    pub cache_hits: usize,
    /// Cache misses (characterisations actually run).
    pub cache_misses: usize,
    /// Scheduler counters.
    pub scheduler: SchedulerStats,
}

/// A blocking `rlplanner.rpc/v1` client over one TCP connection.
pub struct ServeClient {
    stream: TcpStream,
    stashed: VecDeque<Value>,
}

impl ServeClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the connection error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        Ok(ServeClient {
            stream: TcpStream::connect(addr)?,
            stashed: VecDeque::new(),
        })
    }

    /// Submits an already-rendered `rlplanner.request/v1` document.
    /// `progress_every` asks the daemon to stream every Nth candidate
    /// (0 disables streaming).
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] if the daemon rejected the document,
    /// otherwise transport/protocol errors.
    pub fn submit(
        &mut self,
        request_json: &str,
        progress_every: usize,
    ) -> Result<Submit, ClientError> {
        self.send(&ClientMessage::render_solve(request_json, progress_every))?;
        let reply = self.read_reply(&["accepted", "busy"])?;
        match frame_type(&reply)? {
            "accepted" => Ok(Submit::Accepted(u64_field(&reply, "job")?)),
            _ => Ok(Submit::Busy {
                capacity: u64_field(&reply, "capacity")? as usize,
            }),
        }
    }

    /// Blocks until `job` finishes, collecting its streamed progress.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] if the job failed, otherwise
    /// transport/protocol errors.
    pub fn wait_outcome(&mut self, job: u64) -> Result<JobResult, ClientError> {
        let mut progress = Vec::new();
        loop {
            // Replay this job's stashed frames first; frames for other jobs
            // stay stashed (popping and re-stashing them would spin).
            let frame = match self
                .stashed
                .iter()
                .position(|f| u64_field(f, "job").ok() == Some(job))
            {
                Some(index) => self.stashed.remove(index).expect("index in bounds"),
                None => {
                    let frame = self.read_socket_frame()?;
                    if u64_field(&frame, "job").ok() != Some(job) {
                        self.stashed.push_back(frame);
                        continue;
                    }
                    frame
                }
            };
            match frame_type(&frame)? {
                "progress" => progress.push(ProgressSample {
                    candidate: u64_field(&frame, "candidate")? as usize,
                    reward: f64_field(&frame, "reward")?,
                    best_reward: f64_field(&frame, "best_reward")?,
                }),
                "outcome" => {
                    let outcome = frame
                        .get("outcome")
                        .cloned()
                        .ok_or_else(|| protocol_err("outcome frame has no `outcome`"))?;
                    return Ok(JobResult { outcome, progress });
                }
                "failed" => {
                    return Err(ClientError::Remote(
                        str_field(&frame, "message")?.to_string(),
                    ));
                }
                other => {
                    return Err(protocol_err(&format!(
                        "unexpected `{other}` frame for job {job}"
                    )));
                }
            }
        }
    }

    /// Queries a job's lifecycle state (`queued`, `running`, `done`,
    /// `failed`, `cancelled` or `unknown`).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a daemon-reported error.
    pub fn status(&mut self, job: u64) -> Result<String, ClientError> {
        self.send(&ClientMessage::render_status(job))?;
        let reply = self.read_reply(&["status"])?;
        Ok(str_field(&reply, "state")?.to_string())
    }

    /// Cancels a queued job; `true` if it was removed before running.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a daemon-reported error.
    pub fn cancel(&mut self, job: u64) -> Result<bool, ClientError> {
        self.send(&ClientMessage::render_cancel(job))?;
        let reply = self.read_reply(&["cancelled"])?;
        match reply.get("ok") {
            Some(Value::Bool(ok)) => Ok(*ok),
            _ => Err(protocol_err("cancelled frame has no boolean `ok`")),
        }
    }

    /// Fetches cache + scheduler telemetry.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a daemon-reported error.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        self.send(&ClientMessage::render_stats())?;
        let reply = self.read_reply(&["stats"])?;
        let cache = reply
            .get("cache")
            .ok_or_else(|| protocol_err("stats frame has no `cache`"))?;
        let scheduler = reply
            .get("scheduler")
            .ok_or_else(|| protocol_err("stats frame has no `scheduler`"))?;
        let field = |doc: &Value, key: &str| u64_field(doc, key).map(|v| v as usize);
        Ok(StatsReport {
            cache_models: field(cache, "models")?,
            cache_hits: field(cache, "hits")?,
            cache_misses: field(cache, "misses")?,
            scheduler: SchedulerStats {
                workers: field(scheduler, "workers")?,
                capacity: field(scheduler, "capacity")?,
                queued: field(scheduler, "queued")?,
                running: field(scheduler, "running")?,
                admitted: field(scheduler, "admitted")?,
                completed: field(scheduler, "completed")?,
                failed: field(scheduler, "failed")?,
                cancelled: field(scheduler, "cancelled")?,
            },
        })
    }

    /// Fetches the daemon's `rlplanner.metrics/v1` snapshot.
    ///
    /// Returns the embedded snapshot document; render it with
    /// [`Value::render`] to recover the JSON text.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a daemon-reported error.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.send(&ClientMessage::render_metrics())?;
        let reply = self.read_reply(&["metrics"])?;
        reply
            .get("metrics")
            .cloned()
            .ok_or_else(|| protocol_err("metrics frame has no `metrics`"))
    }

    /// Requests graceful shutdown; returns the number of jobs the daemon
    /// still had to drain.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or a daemon-reported error.
    pub fn shutdown(&mut self) -> Result<usize, ClientError> {
        self.send(&ClientMessage::render_shutdown())?;
        let reply = self.read_reply(&["shutdown"])?;
        u64_field(&reply, "draining").map(|v| v as usize)
    }

    fn send(&mut self, payload: &str) -> io::Result<()> {
        protocol::write_frame(&mut self.stream, payload)
    }

    /// Reads frames from the socket until one matches `expected`, stashing
    /// pushed job-lifecycle frames for later [`ServeClient::wait_outcome`]
    /// calls. Replies always arrive after their request on the wire, so a
    /// stashed (older) frame can never be the reply and the stash is not
    /// consulted. An `error` frame becomes [`ClientError::Remote`].
    fn read_reply(&mut self, expected: &[&str]) -> Result<Value, ClientError> {
        loop {
            let frame = self.read_socket_frame()?;
            let kind = frame_type(&frame)?;
            if expected.contains(&kind) {
                return Ok(frame);
            }
            match kind {
                "error" => {
                    return Err(ClientError::Remote(
                        str_field(&frame, "message")?.to_string(),
                    ));
                }
                "progress" | "outcome" | "failed" => self.stashed.push_back(frame),
                other => {
                    return Err(protocol_err(&format!(
                        "expected one of {expected:?}, daemon sent `{other}`"
                    )));
                }
            }
        }
    }

    /// Reads and schema-checks the next frame off the socket.
    fn read_socket_frame(&mut self) -> Result<Value, ClientError> {
        let payload = protocol::read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))
        })?;
        let frame =
            Value::parse(&payload).map_err(|e| protocol_err(&format!("unparseable frame: {e}")))?;
        match frame.get("schema").and_then(Value::as_str) {
            Some(RPC_SCHEMA) => Ok(frame),
            other => Err(protocol_err(&format!(
                "frame schema is {other:?}, expected `{RPC_SCHEMA}`"
            ))),
        }
    }
}

fn protocol_err(message: &str) -> ClientError {
    ClientError::Protocol(message.to_string())
}

fn frame_type(frame: &Value) -> Result<&str, ClientError> {
    frame
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| protocol_err("frame has no `type`"))
}

fn str_field<'a>(frame: &'a Value, key: &str) -> Result<&'a str, ClientError> {
    frame
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| protocol_err(&format!("frame has no `{key}` string")))
}

fn f64_field(frame: &Value, key: &str) -> Result<f64, ClientError> {
    frame
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| protocol_err(&format!("frame has no `{key}` number")))
}

fn u64_field(frame: &Value, key: &str) -> Result<u64, ClientError> {
    match frame.get(key).and_then(Value::as_f64) {
        Some(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u64),
        _ => Err(protocol_err(&format!(
            "frame has no non-negative integer `{key}`"
        ))),
    }
}
