//! Synthetic chiplet system generation.
//!
//! The paper evaluates its fast thermal model on 2,000 synthetic chiplet
//! systems (Table II) and its planner on five synthetic cases (Table III).
//! This module provides a seeded generator for such systems so both
//! experiments are reproducible.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlp_chiplet::{Chiplet, ChipletSystem, Net};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic system distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Inclusive range of chiplet counts.
    pub chiplet_count: (usize, usize),
    /// Range of die side lengths in millimetres.
    pub side_mm: (f64, f64),
    /// Range of power densities in W/mm².
    pub power_density_w_mm2: (f64, f64),
    /// Range of wire counts per net.
    pub wires: (u32, u32),
    /// Probability of adding an extra net beyond the connectivity spanning tree.
    pub extra_net_probability: f64,
    /// Target interposer utilisation (chiplet area / interposer area).
    pub target_utilization: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            chiplet_count: (4, 10),
            side_mm: (4.0, 14.0),
            power_density_w_mm2: (0.1, 0.6),
            wires: (16, 256),
            extra_net_probability: 0.3,
            target_utilization: 0.35,
        }
    }
}

impl SyntheticConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.chiplet_count.0 < 1 || self.chiplet_count.0 > self.chiplet_count.1 {
            return Err("chiplet count range is invalid".to_string());
        }
        if self.side_mm.0 <= 0.0 || self.side_mm.0 > self.side_mm.1 {
            return Err("side length range is invalid".to_string());
        }
        if self.power_density_w_mm2.0 < 0.0
            || self.power_density_w_mm2.0 > self.power_density_w_mm2.1
        {
            return Err("power density range is invalid".to_string());
        }
        if self.wires.0 < 1 || self.wires.0 > self.wires.1 {
            return Err("wire count range is invalid".to_string());
        }
        if !(0.0..=1.0).contains(&self.extra_net_probability) {
            return Err("extra net probability must be in [0, 1]".to_string());
        }
        if !(0.05..=0.7).contains(&self.target_utilization) {
            return Err("target utilization must be in [0.05, 0.7]".to_string());
        }
        Ok(())
    }
}

/// A seeded generator of random chiplet systems.
#[derive(Debug, Clone)]
pub struct SyntheticSystemGenerator {
    config: SyntheticConfig,
    rng: ChaCha8Rng,
    generated: usize,
}

impl SyntheticSystemGenerator {
    /// Creates a generator with the given configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        config.validate().expect("invalid synthetic configuration");
        Self {
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            generated: 0,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Generates the next random system.
    pub fn generate(&mut self) -> ChipletSystem {
        self.generated += 1;
        rlp_obs::obs_counter!("benchmarks.synthetic.systems").inc();
        let count = self
            .rng
            .gen_range(self.config.chiplet_count.0..=self.config.chiplet_count.1);
        // Draw dies first so the interposer can be sized from their total area.
        let mut dies = Vec::with_capacity(count);
        let mut total_area = 0.0;
        for i in 0..count {
            let w = self
                .rng
                .gen_range(self.config.side_mm.0..=self.config.side_mm.1);
            let h = self
                .rng
                .gen_range(self.config.side_mm.0..=self.config.side_mm.1);
            let density = self
                .rng
                .gen_range(self.config.power_density_w_mm2.0..=self.config.power_density_w_mm2.1);
            total_area += w * h;
            dies.push((format!("chiplet{i}"), w, h, w * h * density));
        }
        let interposer_area = total_area / self.config.target_utilization;
        let side = interposer_area.sqrt().ceil();
        // Never smaller than twice the largest die side, so rotations stay legal.
        let largest_side = dies
            .iter()
            .map(|(_, w, h, _)| w.max(*h))
            .fold(0.0f64, f64::max);
        let side = side.max(2.0 * largest_side);

        let mut sys = ChipletSystem::new(format!("synthetic-{}", self.generated), side, side);
        let ids: Vec<_> = dies
            .into_iter()
            .map(|(name, w, h, p)| sys.add_chiplet(Chiplet::new(name, w, h, p)))
            .collect();

        // Connectivity: a random spanning tree keeps the system connected,
        // plus optional extra nets.
        for i in 1..ids.len() {
            let parent = self.rng.gen_range(0..i);
            let wires = self
                .rng
                .gen_range(self.config.wires.0..=self.config.wires.1);
            sys.add_net(Net::new(ids[parent], ids[i], wires));
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if self.rng.gen::<f64>() < self.config.extra_net_probability {
                    let wires = self
                        .rng
                        .gen_range(self.config.wires.0..=self.config.wires.1);
                    sys.add_net(Net::new(ids[i], ids[j], wires));
                }
            }
        }
        sys
    }

    /// Generates a batch of systems.
    pub fn generate_batch(&mut self, count: usize) -> Vec<ChipletSystem> {
        (0..count).map(|_| self.generate()).collect()
    }
}

/// The five fixed synthetic cases of the paper's Table III (Case1–Case5).
///
/// Each case uses a distinct seed and chiplet-count range so the five
/// systems span small to moderately large floorplanning instances.
///
/// # Panics
///
/// Panics if `case` is not in `1..=5`.
pub fn synthetic_case(case: usize) -> ChipletSystem {
    assert!(
        (1..=5).contains(&case),
        "synthetic cases are numbered 1..=5"
    );
    let counts = [(4, 4), (5, 5), (6, 6), (7, 7), (8, 8)];
    let config = SyntheticConfig {
        chiplet_count: counts[case - 1],
        ..SyntheticConfig::default()
    };
    let mut generator = SyntheticSystemGenerator::new(config, 1000 + case as u64);
    let mut sys = generator.generate();
    // Give the case a stable, paper-style name.
    let renamed = ChipletSystem::new(
        format!("case{case}"),
        sys.interposer_width(),
        sys.interposer_height(),
    );
    let mut out = renamed;
    let mut id_map = Vec::new();
    for (_, chiplet) in sys.chiplets() {
        id_map.push(out.add_chiplet(chiplet.clone()));
    }
    for net in sys.nets() {
        out.add_net(Net::new(
            id_map[net.from.index()],
            id_map[net.to.index()],
            net.wires,
        ));
    }
    sys = out;
    sys
}

/// All five synthetic cases, in order.
pub fn synthetic_cases() -> Vec<ChipletSystem> {
    (1..=5).map(synthetic_case).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let mut g1 = SyntheticSystemGenerator::new(SyntheticConfig::default(), 7);
        let mut g2 = SyntheticSystemGenerator::new(SyntheticConfig::default(), 7);
        let a = g1.generate();
        let b = g2.generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_produce_different_systems() {
        let mut g1 = SyntheticSystemGenerator::new(SyntheticConfig::default(), 1);
        let mut g2 = SyntheticSystemGenerator::new(SyntheticConfig::default(), 2);
        assert_ne!(g1.generate(), g2.generate());
    }

    #[test]
    fn generated_systems_are_connected_and_plannable() {
        let mut generator = SyntheticSystemGenerator::new(SyntheticConfig::default(), 42);
        for sys in generator.generate_batch(25) {
            assert!(sys.chiplet_count() >= 4);
            // Spanning tree guarantees at least n-1 nets.
            assert!(sys.net_count() >= sys.chiplet_count() - 1);
            // Utilisation near the target leaves room to plan.
            let util = sys.utilization();
            assert!(util < 0.5, "{}: utilization {util}", sys.name());
            // Every chiplet appears in at least one net.
            for id in sys.chiplet_ids() {
                assert!(sys.nets_of(id).count() > 0, "{id} is disconnected");
            }
        }
    }

    #[test]
    fn batch_size_is_respected() {
        let mut generator = SyntheticSystemGenerator::new(SyntheticConfig::default(), 0);
        assert_eq!(generator.generate_batch(10).len(), 10);
    }

    #[test]
    fn synthetic_cases_are_stable_and_distinct() {
        let cases = synthetic_cases();
        assert_eq!(cases.len(), 5);
        for (i, case) in cases.iter().enumerate() {
            assert_eq!(case.name(), format!("case{}", i + 1));
            assert_eq!(case.chiplet_count(), i + 4);
        }
        // Regenerating gives identical systems (fixed seeds).
        assert_eq!(synthetic_case(3), synthetic_case(3));
    }

    #[test]
    fn config_validation_catches_bad_ranges() {
        assert!(SyntheticConfig {
            chiplet_count: (5, 2),
            ..SyntheticConfig::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticConfig {
            side_mm: (0.0, 5.0),
            ..SyntheticConfig::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticConfig {
            target_utilization: 0.9,
            ..SyntheticConfig::default()
        }
        .validate()
        .is_err());
        assert!(SyntheticConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "numbered 1..=5")]
    fn out_of_range_case_panics() {
        synthetic_case(6);
    }
}
