//! The three reconstructed benchmark systems of Table I.

use rlp_chiplet::{Chiplet, ChipletSystem, Net};

/// Multi-GPU system, after the MCM-GPU style benchmark used by TAP-2.5D:
/// four GPU chiplets, each paired with an HBM stack, with GPU-to-GPU links.
///
/// # Examples
///
/// ```
/// let sys = rlp_benchmarks::multi_gpu_system();
/// assert_eq!(sys.chiplet_count(), 8);
/// assert!(sys.total_power() > 300.0);
/// ```
pub fn multi_gpu_system() -> ChipletSystem {
    let mut sys = ChipletSystem::new("multi-gpu", 55.0, 55.0);
    let gpus: Vec<_> = (0..4)
        .map(|i| sys.add_chiplet(Chiplet::new(format!("gpu{i}"), 14.0, 16.0, 70.0)))
        .collect();
    let hbms: Vec<_> = (0..4)
        .map(|i| sys.add_chiplet(Chiplet::new(format!("hbm{i}"), 8.0, 12.0, 15.0)))
        .collect();
    // Each GPU talks to its own HBM stack over a wide interface.
    for (gpu, hbm) in gpus.iter().zip(hbms.iter()) {
        sys.add_net(Net::new(*gpu, *hbm, 512));
    }
    // GPU-to-GPU links (all pairs), narrower.
    for i in 0..gpus.len() {
        for j in (i + 1)..gpus.len() {
            sys.add_net(Net::new(gpus[i], gpus[j], 128));
        }
    }
    sys
}

/// Disaggregated CPU-DRAM system, after Kannan et al.: eight core chiplets,
/// two shared cache chiplets and four DRAM stacks.
///
/// # Examples
///
/// ```
/// let sys = rlp_benchmarks::cpu_dram_system();
/// assert_eq!(sys.chiplet_count(), 14);
/// ```
pub fn cpu_dram_system() -> ChipletSystem {
    let mut sys = ChipletSystem::new("cpu-dram", 55.0, 55.0);
    let cores: Vec<_> = (0..8)
        .map(|i| sys.add_chiplet(Chiplet::new(format!("core{i}"), 9.0, 9.0, 22.0)))
        .collect();
    let caches: Vec<_> = (0..2)
        .map(|i| sys.add_chiplet(Chiplet::new(format!("llc{i}"), 10.0, 12.0, 15.0)))
        .collect();
    let drams: Vec<_> = (0..4)
        .map(|i| sys.add_chiplet(Chiplet::new(format!("dram{i}"), 8.0, 12.0, 5.0)))
        .collect();
    // Every core connects to both last-level-cache slices.
    for core in &cores {
        for cache in &caches {
            sys.add_net(Net::new(*core, *cache, 64));
        }
    }
    // Each cache slice owns two DRAM channels.
    for (i, cache) in caches.iter().enumerate() {
        sys.add_net(Net::new(*cache, drams[2 * i], 128));
        sys.add_net(Net::new(*cache, drams[2 * i + 1], 128));
    }
    sys
}

/// Ascend 910 style AI training package: one large compute die, four HBM
/// stacks, an I/O die and two low-power dummy/spacer dies.
///
/// # Examples
///
/// ```
/// let sys = rlp_benchmarks::ascend910_system();
/// assert_eq!(sys.chiplet_count(), 8);
/// ```
pub fn ascend910_system() -> ChipletSystem {
    let mut sys = ChipletSystem::new("ascend910", 65.0, 50.0);
    let compute = sys.add_chiplet(Chiplet::new("davinci", 26.0, 18.0, 260.0));
    let io = sys.add_chiplet(Chiplet::new("nimbus-io", 12.0, 10.0, 15.0));
    let hbms: Vec<_> = (0..4)
        .map(|i| sys.add_chiplet(Chiplet::new(format!("hbm{i}"), 8.0, 12.0, 8.0)))
        .collect();
    // Two thermally inert spacer dies present in the real package.
    sys.add_chiplet(Chiplet::new("dummy0", 12.0, 10.0, 0.0));
    sys.add_chiplet(Chiplet::new("dummy1", 12.0, 10.0, 0.0));
    for hbm in &hbms {
        sys.add_net(Net::new(compute, *hbm, 512));
    }
    sys.add_net(Net::new(compute, io, 256));
    sys
}

/// All three standard benchmark systems, in the order of the paper's Table I.
pub fn standard_benchmarks() -> Vec<ChipletSystem> {
    vec![multi_gpu_system(), cpu_dram_system(), ascend910_system()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlp_chiplet::{Placement, PlacementGrid, Rotation};

    #[test]
    fn benchmark_inventory_matches_expectations() {
        let multi_gpu = multi_gpu_system();
        assert_eq!(multi_gpu.chiplet_count(), 8);
        assert_eq!(multi_gpu.net_count(), 4 + 6);
        assert!((multi_gpu.total_power() - 340.0).abs() < 1e-9);

        let cpu_dram = cpu_dram_system();
        assert_eq!(cpu_dram.chiplet_count(), 14);
        assert_eq!(cpu_dram.net_count(), 16 + 4);
        assert!((cpu_dram.total_power() - 226.0).abs() < 1e-9);

        let ascend = ascend910_system();
        assert_eq!(ascend.chiplet_count(), 8);
        assert_eq!(ascend.net_count(), 5);
        assert!((ascend.total_power() - 307.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_leaves_room_for_floorplanning() {
        for sys in standard_benchmarks() {
            let util = sys.utilization();
            assert!(
                util > 0.2 && util < 0.6,
                "{}: utilization {util} outside the plannable range",
                sys.name()
            );
        }
    }

    #[test]
    fn every_benchmark_admits_a_legal_grid_placement() {
        // Greedy first-fit over a 16x16 grid must succeed for each benchmark;
        // this is the same grid the RL environment and the SA baseline use.
        for sys in standard_benchmarks() {
            let grid = PlacementGrid::new(16, 16);
            let mut placement = Placement::for_system(&sys);
            let mut ids: Vec<_> = sys.chiplet_ids().collect();
            ids.sort_by(|&a, &b| {
                sys.chiplet(b)
                    .area()
                    .partial_cmp(&sys.chiplet(a).area())
                    .unwrap()
            });
            for id in ids {
                let mask = grid.feasibility_mask(&sys, &placement, id, Rotation::None, 0.2);
                let cell = mask
                    .iter()
                    .position(|&ok| ok)
                    .unwrap_or_else(|| panic!("{}: no feasible cell for {id}", sys.name()));
                grid.apply_action(&sys, &mut placement, id, Rotation::None, cell)
                    .unwrap();
            }
            assert!(sys.validate_placement(&placement, 0.2).is_ok());
        }
    }

    #[test]
    fn benchmark_names_are_distinct() {
        let names: Vec<String> = standard_benchmarks()
            .iter()
            .map(|s| s.name().to_string())
            .collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"multi-gpu".to_string()));
        assert!(names.contains(&"cpu-dram".to_string()));
        assert!(names.contains(&"ascend910".to_string()));
    }

    #[test]
    fn dummy_dies_have_zero_power() {
        let ascend = ascend910_system();
        let dummies: Vec<_> = ascend
            .chiplets()
            .filter(|(_, c)| c.name().starts_with("dummy"))
            .collect();
        assert_eq!(dummies.len(), 2);
        assert!(dummies.iter().all(|(_, c)| c.power() == 0.0));
    }
}
