//! Benchmark chiplet systems used in the paper's evaluation.
//!
//! Three "open-source" benchmark systems (Table I) plus a synthetic system
//! generator used for the 2,000-sample thermal-model evaluation (Table II)
//! and the five synthetic cases of Table III.
//!
//! The exact netlists of the published benchmarks are not distributed with
//! the paper, so the systems here are reconstructed from the public sources
//! the paper cites (TAP-2.5D for the multi-GPU system, Kannan et al. for the
//! disaggregated CPU-DRAM system and press material for the Ascend 910
//! package): die footprints, power budgets and connection structure follow
//! those descriptions, which preserves the relative behaviour the paper's
//! comparisons rest on. See DESIGN.md for the substitution notes.

pub mod standard;
pub mod synthetic;

pub use standard::{ascend910_system, cpu_dram_system, multi_gpu_system, standard_benchmarks};
pub use synthetic::{synthetic_case, synthetic_cases, SyntheticConfig, SyntheticSystemGenerator};
