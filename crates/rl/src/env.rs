//! The environment interface consumed by the PPO agent.

use rlp_nn::Tensor;

/// One observation of the environment: the state tensor fed to the policy
/// network and the mask of currently feasible actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// State tensor *without* a batch dimension (e.g. `[channels, h, w]`).
    pub state: Tensor,
    /// `action_mask[a]` is `true` when action `a` is feasible in this state.
    pub action_mask: Vec<bool>,
}

impl Observation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty or disables every action.
    pub fn new(state: Tensor, action_mask: Vec<bool>) -> Self {
        assert!(!action_mask.is_empty(), "action mask must not be empty");
        assert!(
            action_mask.iter().any(|&m| m),
            "observation must have at least one feasible action"
        );
        Self { state, action_mask }
    }

    /// Number of feasible actions in this observation.
    pub fn feasible_count(&self) -> usize {
        self.action_mask.iter().filter(|&&m| m).count()
    }
}

/// Result of taking one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Observation after the step; `None` when the episode terminated and no
    /// further action will be taken.
    pub observation: Option<Observation>,
    /// Scalar reward for the transition.
    pub reward: f64,
    /// `true` when the episode has ended.
    pub done: bool,
}

/// A sequential decision problem with a discrete, maskable action space.
///
/// RLPlanner's floorplanning environment places one chiplet per step; the
/// episode ends when every chiplet is placed and the final reward combines
/// wirelength and peak temperature.
pub trait Environment {
    /// Resets the environment and returns the initial observation.
    fn reset(&mut self) -> Observation;

    /// Applies an action.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the action is infeasible (the agent is
    /// expected to respect the action mask) or if the episode already ended.
    fn step(&mut self, action: usize) -> StepResult;

    /// Size of the (flat) discrete action space.
    fn action_count(&self) -> usize;

    /// Shape of the observation state tensor (without batch dimension).
    fn observation_shape(&self) -> Vec<usize>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observation_counts_feasible_actions() {
        let obs = Observation::new(Tensor::zeros(vec![2]), vec![true, false, true]);
        assert_eq!(obs.feasible_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one feasible action")]
    fn observation_requires_a_feasible_action() {
        Observation::new(Tensor::zeros(vec![1]), vec![false, false]);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn observation_requires_nonempty_mask() {
        Observation::new(Tensor::zeros(vec![1]), vec![]);
    }
}
