//! Typed configuration and runtime errors.
//!
//! Validation across the optimisation stack ([`crate::PpoConfig`], the
//! planner-level configs in the `rlplanner` crate) reports the first invalid
//! field through [`ConfigError`] instead of a bare `String`, so callers can
//! match on the failure mode and error chains compose with
//! [`std::error::Error`]. Runtime misuse of the training machinery (an
//! update on an empty rollout, a rollout pool with no environments) is
//! reported through [`RlError`] instead of panicking.

use std::error::Error;
use std::fmt;

/// A typed description of the first invalid field found while validating a
/// configuration struct.
///
/// The enum is `#[non_exhaustive]`: new validation rules may add variants
/// without a breaking release, so downstream `match`es need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A field that must be strictly positive was zero or negative.
    ExpectedPositive {
        /// Dotted path of the offending field (e.g. `"ppo.learning_rate"`).
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A field that must not be negative was negative.
    ExpectedNonNegative {
        /// Dotted path of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A field that must be strictly negative (e.g. a penalty) was not.
    ExpectedNegative {
        /// Dotted path of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A field fell outside its allowed closed range.
    OutOfRange {
        /// Dotted path of the offending field.
        field: &'static str,
        /// Smallest allowed value.
        min: f64,
        /// Largest allowed value.
        max: f64,
        /// The rejected value.
        value: f64,
    },
    /// A field that must be finite was NaN or infinite.
    NotFinite {
        /// Dotted path of the offending field.
        field: &'static str,
    },
    /// A field was rejected for a reason that does not fit the shapes above
    /// (cross-field constraints, or validators bridged from other crates).
    Invalid {
        /// Dotted path of the offending field or subsystem.
        field: &'static str,
        /// Human-readable description of the constraint that failed.
        reason: String,
    },
}

impl ConfigError {
    /// Dotted path of the field this error refers to.
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::ExpectedPositive { field, .. }
            | ConfigError::ExpectedNonNegative { field, .. }
            | ConfigError::ExpectedNegative { field, .. }
            | ConfigError::OutOfRange { field, .. }
            | ConfigError::NotFinite { field }
            | ConfigError::Invalid { field, .. } => field,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ExpectedPositive { field, value } => {
                write!(f, "`{field}` must be positive, got {value}")
            }
            ConfigError::ExpectedNonNegative { field, value } => {
                write!(f, "`{field}` must not be negative, got {value}")
            }
            ConfigError::ExpectedNegative { field, value } => {
                write!(f, "`{field}` must be negative, got {value}")
            }
            ConfigError::OutOfRange {
                field,
                min,
                max,
                value,
            } => write!(f, "`{field}` must be in [{min}, {max}], got {value}"),
            ConfigError::NotFinite { field } => write!(f, "`{field}` must be finite"),
            ConfigError::Invalid { field, reason } => write!(f, "`{field}` is invalid: {reason}"),
        }
    }
}

impl Error for ConfigError {}

/// A runtime error from the training machinery.
///
/// The enum is `#[non_exhaustive]`: future training-loop failure modes may
/// add variants without a breaking release, so downstream `match`es need a
/// wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RlError {
    /// [`crate::PpoAgent::update`] was called on an empty rollout buffer —
    /// there is nothing to estimate advantages or gradients from.
    EmptyRollout,
    /// A [`crate::VecEnvPool`] was constructed with no environments.
    EmptyPool,
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::EmptyRollout => {
                write!(f, "cannot run a PPO update on an empty rollout buffer")
            }
            RlError::EmptyPool => {
                write!(f, "a rollout pool needs at least one environment")
            }
        }
    }
}

impl Error for RlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field_and_value() {
        let err = ConfigError::ExpectedPositive {
            field: "learning_rate",
            value: -1.0,
        };
        let text = err.to_string();
        assert!(text.contains("learning_rate"));
        assert!(text.contains("-1"));
        assert_eq!(err.field(), "learning_rate");
    }

    #[test]
    fn out_of_range_reports_the_bounds() {
        let err = ConfigError::OutOfRange {
            field: "gamma",
            min: 0.0,
            max: 1.0,
            value: 1.5,
        };
        let text = err.to_string();
        assert!(text.contains("[0, 1]"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn errors_implement_std_error() {
        let err: Box<dyn Error> = Box::new(ConfigError::NotFinite { field: "alpha" });
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn rl_errors_display_and_implement_std_error() {
        let err: Box<dyn Error> = Box::new(RlError::EmptyRollout);
        assert!(err.to_string().contains("empty rollout"));
        let err: Box<dyn Error> = Box::new(RlError::EmptyPool);
        assert!(err.to_string().contains("at least one environment"));
    }

    #[test]
    fn invalid_carries_a_free_form_reason() {
        let err = ConfigError::Invalid {
            field: "sa",
            reason: "final temperature must not exceed the initial temperature".to_string(),
        };
        assert!(err.to_string().contains("final temperature"));
        assert_eq!(err.field(), "sa");
    }
}
