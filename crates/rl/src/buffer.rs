//! Trajectory storage and generalised advantage estimation.

use rlp_nn::Tensor;

/// One stored transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation state (no batch dimension).
    pub state: Tensor,
    /// Feasibility mask at the time of the decision.
    pub action_mask: Vec<bool>,
    /// Action taken.
    pub action: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Value estimate of the state under the behaviour policy.
    pub value: f32,
    /// Extrinsic (environment) reward received after the action.
    pub reward: f64,
    /// Intrinsic (exploration) reward, e.g. from RND; zero when unused.
    pub intrinsic_reward: f64,
    /// Whether the episode terminated after this transition.
    pub done: bool,
}

/// A rollout buffer holding whole trajectories collected with the current
/// policy, plus the advantages/returns computed from them.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
    advantages: Vec<f32>,
    returns: Vec<f32>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
        // Any previously computed advantages are now stale.
        self.advantages.clear();
        self.returns.clear();
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Clears all stored data.
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.advantages.clear();
        self.returns.clear();
    }

    /// The stored transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Advantages computed by the last [`RolloutBuffer::compute_gae`] call.
    ///
    /// # Panics
    ///
    /// Panics if GAE has not been computed since the last push.
    pub fn advantages(&self) -> &[f32] {
        assert_eq!(
            self.advantages.len(),
            self.transitions.len(),
            "call compute_gae before reading advantages"
        );
        &self.advantages
    }

    /// Returns (discounted reward-to-go targets) from the last GAE pass.
    ///
    /// # Panics
    ///
    /// Panics if GAE has not been computed since the last push.
    pub fn returns(&self) -> &[f32] {
        assert_eq!(
            self.returns.len(),
            self.transitions.len(),
            "call compute_gae before reading returns"
        );
        &self.returns
    }

    /// Sum of extrinsic rewards currently stored (useful for logging).
    pub fn total_reward(&self) -> f64 {
        self.transitions.iter().map(|t| t.reward).sum()
    }

    /// Computes generalised advantage estimates and return targets.
    ///
    /// `gamma` is the discount factor, `lambda` the GAE smoothing factor and
    /// `last_value` the bootstrap value of the state following the final
    /// stored transition (zero if that transition ended the episode).
    /// Rewards used are `reward + intrinsic_reward`.
    ///
    /// Advantages are normalised to zero mean and unit variance when the
    /// buffer holds more than one transition, the standard PPO practice.
    pub fn compute_gae(&mut self, gamma: f64, lambda: f64, last_value: f32) {
        let n = self.transitions.len();
        self.advantages = vec![0.0; n];
        self.returns = vec![0.0; n];
        if n == 0 {
            return;
        }
        let mut gae = 0.0f64;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let next_value = if t.done {
                0.0
            } else if i + 1 < n {
                f64::from(self.transitions[i + 1].value)
            } else {
                f64::from(last_value)
            };
            let not_done = if t.done { 0.0 } else { 1.0 };
            let reward = t.reward + t.intrinsic_reward;
            let delta = reward + gamma * next_value - f64::from(t.value);
            gae = delta + gamma * lambda * not_done * gae;
            self.advantages[i] = gae as f32;
            self.returns[i] = (gae + f64::from(t.value)) as f32;
        }
        if n > 1 {
            let mean: f32 = self.advantages.iter().sum::<f32>() / n as f32;
            let var: f32 = self
                .advantages
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f32>()
                / n as f32;
            let std = var.sqrt().max(1e-6);
            for a in &mut self.advantages {
                *a = (*a - mean) / std;
            }
        }
    }

    /// Stacks all states into a `[n, ...]` batch tensor.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn stacked_states(&self) -> Tensor {
        assert!(!self.transitions.is_empty(), "buffer is empty");
        let state_shape = self.transitions[0].state.shape().to_vec();
        let per_state: usize = state_shape.iter().product();
        let mut data = Vec::with_capacity(self.transitions.len() * per_state);
        for t in &self.transitions {
            assert_eq!(t.state.shape(), state_shape.as_slice(), "state shape drift");
            data.extend_from_slice(t.state.data());
        }
        let mut shape = vec![self.transitions.len()];
        shape.extend(state_shape);
        Tensor::from_vec(data, shape)
    }

    /// Stacks a subset of states (by index) into a batch tensor.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn stacked_states_for(&self, indices: &[usize]) -> Tensor {
        assert!(!indices.is_empty(), "no indices given");
        let state_shape = self.transitions[indices[0]].state.shape().to_vec();
        let per_state: usize = state_shape.iter().product();
        let mut data = Vec::with_capacity(indices.len() * per_state);
        for &i in indices {
            data.extend_from_slice(self.transitions[i].state.data());
        }
        let mut shape = vec![indices.len()];
        shape.extend(state_shape);
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transition(reward: f64, value: f32, done: bool) -> Transition {
        Transition {
            state: Tensor::from_vec(vec![reward as f32], vec![1]),
            action_mask: vec![true],
            action: 0,
            log_prob: 0.0,
            value,
            reward,
            intrinsic_reward: 0.0,
            done,
        }
    }

    #[test]
    fn push_and_clear() {
        let mut buf = RolloutBuffer::new();
        assert!(buf.is_empty());
        buf.push(transition(1.0, 0.0, true));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.total_reward(), 1.0);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn single_step_episode_advantage_is_reward_minus_value() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(2.0, 0.5, true));
        buf.compute_gae(0.99, 0.95, 0.0);
        // Only one sample, so no normalisation is applied.
        assert!((buf.advantages()[0] - 1.5).abs() < 1e-6);
        assert!((buf.returns()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gae_matches_hand_computation_for_two_steps() {
        // gamma = 1, lambda = 1 reduces GAE to Monte-Carlo advantage.
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, false));
        buf.push(transition(2.0, 0.0, true));
        buf.compute_gae(1.0, 1.0, 0.0);
        // Raw advantages would be [3, 2]; returns are [3, 2].
        assert!((buf.returns()[0] - 3.0).abs() < 1e-6);
        assert!((buf.returns()[1] - 2.0).abs() < 1e-6);
        // Advantages are normalised to mean 0.
        let mean: f32 = buf.advantages().iter().sum::<f32>() / 2.0;
        assert!(mean.abs() < 1e-6);
        assert!(buf.advantages()[0] > buf.advantages()[1]);
    }

    #[test]
    fn bootstrap_value_is_used_when_episode_is_truncated() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(0.0, 0.0, false));
        buf.compute_gae(1.0, 1.0, 5.0);
        // delta = 0 + 1*5 - 0 = 5
        assert!((buf.returns()[0] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn done_flag_stops_bootstrapping() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(0.0, 0.0, true));
        buf.compute_gae(1.0, 1.0, 100.0);
        assert!((buf.returns()[0] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn intrinsic_reward_is_added() {
        let mut buf = RolloutBuffer::new();
        let mut t = transition(1.0, 0.0, true);
        t.intrinsic_reward = 0.5;
        buf.push(t);
        buf.compute_gae(0.99, 0.95, 0.0);
        assert!((buf.returns()[0] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn stacking_produces_batch_tensor() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, false));
        buf.push(transition(2.0, 0.0, true));
        let states = buf.stacked_states();
        assert_eq!(states.shape(), &[2, 1]);
        assert_eq!(states.data(), &[1.0, 2.0]);
        let subset = buf.stacked_states_for(&[1]);
        assert_eq!(subset.data(), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "compute_gae before reading")]
    fn reading_advantages_before_gae_panics() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, true));
        let _ = buf.advantages();
    }

    #[test]
    fn pushing_invalidates_previous_gae() {
        let mut buf = RolloutBuffer::new();
        buf.push(transition(1.0, 0.0, true));
        buf.compute_gae(0.99, 0.95, 0.0);
        buf.push(transition(1.0, 0.0, true));
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| buf.advantages())).is_err()
        );
    }
}
