//! Streaming progress hooks for training loops.
//!
//! A training loop (such as the PPO loop in the `rlplanner` crate) accepts a
//! [`TrainingObserver`] and reports every finished episode and every policy
//! update to it. This is how a caller streams uniform telemetry out of a run
//! without the loop committing to a particular storage format.

use crate::ppo::PpoStats;

/// Receives progress events from a training loop.
///
/// Every method has a no-op default, so an observer only implements the
/// events it cares about.
pub trait TrainingObserver {
    /// Called after each finished episode with its 0-based index, the total
    /// extrinsic episode reward, and the best episode reward seen so far in
    /// this run.
    fn on_episode(&mut self, index: usize, reward: f64, best_reward: f64) {
        let _ = (index, reward, best_reward);
    }

    /// Called after each PPO update with the update's aggregate statistics.
    fn on_update(&mut self, stats: &PpoStats) {
        let _ = stats;
    }

    /// Called once per episode collected by a parallel rollout pass, in
    /// episode order, naming the pool environment that ran it. Serial
    /// training loops never emit this event; parallel loops emit it right
    /// before the episode's [`TrainingObserver::on_episode`].
    fn on_env_episode(&mut self, env_index: usize, episode_index: usize, reward: f64) {
        let _ = (env_index, episode_index, reward);
    }
}

/// An observer that ignores every event; the default when a caller does not
/// need telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTrainingObserver;

impl TrainingObserver for NullTrainingObserver {}

/// Forwards every training event to two observers, `first` before `second`.
///
/// Training loops accept exactly one observer; `TeeTrainingObserver` is how
/// a caller attaches two independent consumers to the same run — e.g. the
/// facade's telemetry collector plus a serving layer streaming progress
/// frames to a client mid-solve.
#[derive(Debug)]
pub struct TeeTrainingObserver<'a, A: ?Sized, B: ?Sized> {
    /// Receives each event first.
    pub first: &'a mut A,
    /// Receives each event second.
    pub second: &'a mut B,
}

impl<A, B> TrainingObserver for TeeTrainingObserver<'_, A, B>
where
    A: TrainingObserver + ?Sized,
    B: TrainingObserver + ?Sized,
{
    fn on_episode(&mut self, index: usize, reward: f64, best_reward: f64) {
        self.first.on_episode(index, reward, best_reward);
        self.second.on_episode(index, reward, best_reward);
    }

    fn on_update(&mut self, stats: &PpoStats) {
        self.first.on_update(stats);
        self.second.on_update(stats);
    }

    fn on_env_episode(&mut self, env_index: usize, episode_index: usize, reward: f64) {
        self.first.on_env_episode(env_index, episode_index, reward);
        self.second.on_env_episode(env_index, episode_index, reward);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        episodes: Vec<(usize, f64, f64)>,
        updates: usize,
    }

    impl TrainingObserver for Recorder {
        fn on_episode(&mut self, index: usize, reward: f64, best_reward: f64) {
            self.episodes.push((index, reward, best_reward));
        }
        fn on_update(&mut self, _stats: &PpoStats) {
            self.updates += 1;
        }
    }

    #[test]
    fn default_methods_are_no_ops() {
        let mut observer = NullTrainingObserver;
        observer.on_episode(0, -1.0, -1.0);
        observer.on_update(&PpoStats::default());
        observer.on_env_episode(0, 0, -1.0);
    }

    #[test]
    fn custom_observer_receives_events() {
        let mut recorder = Recorder::default();
        recorder.on_episode(0, -2.0, -2.0);
        recorder.on_episode(1, -1.0, -1.0);
        recorder.on_update(&PpoStats::default());
        assert_eq!(recorder.episodes.len(), 2);
        assert_eq!(recorder.episodes[1], (1, -1.0, -1.0));
        assert_eq!(recorder.updates, 1);
    }

    #[test]
    fn tee_forwards_every_event_to_both_observers() {
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        {
            let mut tee = TeeTrainingObserver {
                first: &mut a,
                second: &mut b,
            };
            tee.on_episode(0, -2.0, -2.0);
            tee.on_env_episode(1, 0, -2.0);
            tee.on_update(&PpoStats::default());
        }
        assert_eq!(a.episodes, b.episodes);
        assert_eq!(a.episodes, vec![(0, -2.0, -2.0)]);
        assert_eq!((a.updates, b.updates), (1, 1));
    }
}
