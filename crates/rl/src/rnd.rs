//! Random network distillation (RND) exploration bonus.
//!
//! RND keeps two networks: a *target* network that is randomly initialised
//! and never trained, and a *predictor* network trained to reproduce the
//! target's output on states the agent has visited. States the predictor
//! fits poorly are novel, so the prediction error is used as an intrinsic
//! reward that pushes the agent to explore them — the mechanism the paper
//! uses for the "RLPlanner (RND)" variant.

use rlp_nn::layers::{Layer, Linear, ReLU, Sequential};
use rlp_nn::loss::mse;
use rlp_nn::{Adam, Tensor};

/// The RND exploration module.
pub struct RandomNetworkDistillation {
    target: Sequential,
    predictor: Sequential,
    optimizer: Adam,
    input_dim: usize,
    bonus_scale: f64,
    /// Running mean of raw prediction errors, used to normalise the bonus.
    running_error: f64,
    observations_seen: u64,
}

impl RandomNetworkDistillation {
    /// Creates an RND module for flattened observations of `input_dim`
    /// values, with the given hidden width, embedding size and bonus scale.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the bonus scale is negative.
    pub fn new(
        input_dim: usize,
        hidden_dim: usize,
        embedding_dim: usize,
        bonus_scale: f64,
        seed: u64,
    ) -> Self {
        assert!(
            input_dim > 0 && hidden_dim > 0 && embedding_dim > 0,
            "network dimensions must be positive"
        );
        assert!(bonus_scale >= 0.0, "bonus scale must be non-negative");
        let mut target = Sequential::new();
        target.push(Linear::new(input_dim, hidden_dim, seed.wrapping_add(100)));
        target.push(ReLU::new());
        target.push(Linear::new(
            hidden_dim,
            embedding_dim,
            seed.wrapping_add(101),
        ));

        let mut predictor = Sequential::new();
        predictor.push(Linear::new(input_dim, hidden_dim, seed.wrapping_add(200)));
        predictor.push(ReLU::new());
        predictor.push(Linear::new(
            hidden_dim,
            embedding_dim,
            seed.wrapping_add(201),
        ));

        Self {
            target,
            predictor,
            optimizer: Adam::new(1e-3),
            input_dim,
            bonus_scale,
            running_error: 0.0,
            observations_seen: 0,
        }
    }

    /// Number of input features the module expects after flattening.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn flatten(&self, state: &Tensor) -> Tensor {
        assert_eq!(
            state.len(),
            self.input_dim,
            "state has {} values but RND expects {}",
            state.len(),
            self.input_dim
        );
        state.reshape(vec![1, self.input_dim])
    }

    /// Intrinsic reward for a state: the (normalised) prediction error of the
    /// predictor network against the frozen target network.
    pub fn bonus(&mut self, state: &Tensor) -> f64 {
        let input = self.flatten(state);
        let target_embedding = self.target.forward(&input, false);
        let predicted_embedding = self.predictor.forward(&input, false);
        let error = f64::from(predicted_embedding.sub(&target_embedding).norm_sq())
            / target_embedding.len() as f64;

        self.observations_seen += 1;
        // Exponential running mean keeps the normaliser adaptive.
        let alpha = if self.observations_seen == 1 {
            1.0
        } else {
            0.01
        };
        self.running_error = (1.0 - alpha) * self.running_error + alpha * error;
        let normaliser = self.running_error.max(1e-8);
        self.bonus_scale * error / normaliser
    }

    /// Trains the predictor on a batch of visited states; returns the MSE
    /// against the target embeddings before the update.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty or any state has the wrong size.
    pub fn update(&mut self, states: &[&Tensor]) -> f32 {
        assert!(!states.is_empty(), "RND update needs at least one state");
        let rows: Vec<Tensor> = states
            .iter()
            .map(|s| self.flatten(s).reshape(vec![self.input_dim]))
            .collect();
        let batch = Tensor::stack_rows(&rows);
        let target_embeddings = self.target.forward(&batch, false);
        self.predictor.zero_grad();
        let predicted = self.predictor.forward(&batch, true);
        let (loss, grad) = mse(&predicted, &target_embeddings);
        self.predictor.backward(&grad);
        self.optimizer.step(&mut self.predictor);
        loss
    }
}

impl std::fmt::Debug for RandomNetworkDistillation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomNetworkDistillation")
            .field("input_dim", &self.input_dim)
            .field("bonus_scale", &self.bonus_scale)
            .field("observations_seen", &self.observations_seen)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(values: &[f32]) -> Tensor {
        Tensor::from_vec(values.to_vec(), vec![values.len()])
    }

    #[test]
    fn bonus_is_non_negative() {
        let mut rnd = RandomNetworkDistillation::new(4, 16, 8, 1.0, 0);
        let b = rnd.bonus(&state(&[0.1, 0.2, 0.3, 0.4]));
        assert!(b >= 0.0);
    }

    #[test]
    fn repeated_training_reduces_prediction_error_on_seen_states() {
        let mut rnd = RandomNetworkDistillation::new(4, 32, 8, 1.0, 1);
        let seen = state(&[0.5, -0.5, 0.25, 1.0]);
        let refs = [&seen];
        let first_loss = rnd.update(&refs);
        let mut last_loss = first_loss;
        for _ in 0..300 {
            last_loss = rnd.update(&refs);
        }
        assert!(
            last_loss < first_loss * 0.5,
            "loss did not drop: {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn novel_states_receive_larger_bonus_than_trained_states() {
        let mut rnd = RandomNetworkDistillation::new(4, 32, 8, 1.0, 2);
        let familiar = state(&[0.1, 0.1, 0.1, 0.1]);
        let refs = [&familiar];
        for _ in 0..400 {
            rnd.update(&refs);
        }
        let familiar_bonus = rnd.bonus(&familiar);
        let novel_bonus = rnd.bonus(&state(&[5.0, -3.0, 2.0, -4.0]));
        assert!(
            novel_bonus > familiar_bonus,
            "novel {novel_bonus} <= familiar {familiar_bonus}"
        );
    }

    #[test]
    fn zero_scale_silences_the_bonus() {
        let mut rnd = RandomNetworkDistillation::new(2, 8, 4, 0.0, 3);
        assert_eq!(rnd.bonus(&state(&[1.0, 2.0])), 0.0);
    }

    #[test]
    fn multi_dimensional_states_are_flattened() {
        let mut rnd = RandomNetworkDistillation::new(6, 8, 4, 1.0, 4);
        let grid_state = Tensor::zeros(vec![2, 3]);
        let b = rnd.bonus(&grid_state);
        assert!(b.is_finite());
        assert_eq!(rnd.input_dim(), 6);
    }

    #[test]
    #[should_panic(expected = "RND expects")]
    fn wrong_state_size_panics() {
        let mut rnd = RandomNetworkDistillation::new(4, 8, 4, 1.0, 5);
        rnd.bonus(&state(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_update_panics() {
        let mut rnd = RandomNetworkDistillation::new(4, 8, 4, 1.0, 6);
        rnd.update(&[]);
    }
}
