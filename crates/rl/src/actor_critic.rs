//! The shared-encoder policy/value network.

use rlp_nn::layers::{Layer, Linear, Sequential};
use rlp_nn::policy::{PolicyError, PolicyFile};
use rlp_nn::{Parameter, Tensor};
use std::path::Path;

/// An actor-critic network: a shared feature encoder followed by a policy
/// head (action logits) and a value head (state value), matching the agent
/// architecture described in the paper ("the policy network and the value
/// network share the same feature encoding CNN layers and two separate fully
/// connected layers are used to get the probability matrix and expected
/// reward").
///
/// The struct implements [`Layer`] so the shared [`rlp_nn::Adam`] optimiser
/// can traverse all parameters; the `Layer::forward`/`Layer::backward` pair
/// works on the concatenated `[logits | value]` tensor, while
/// [`ActorCritic::evaluate`] and [`ActorCritic::backward_heads`] offer a
/// typed interface.
#[derive(Clone)]
pub struct ActorCritic {
    encoder: Sequential,
    policy_head: Linear,
    value_head: Linear,
    action_count: usize,
}

impl ActorCritic {
    /// Builds the network from an encoder producing `feature_dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `feature_dim` or `action_count` is zero.
    pub fn new(encoder: Sequential, feature_dim: usize, action_count: usize, seed: u64) -> Self {
        assert!(feature_dim > 0, "feature dimension must be positive");
        assert!(action_count > 0, "action count must be positive");
        Self {
            encoder,
            policy_head: Linear::new(
                feature_dim,
                action_count,
                seed.wrapping_mul(31).wrapping_add(1),
            ),
            value_head: Linear::new(feature_dim, 1, seed.wrapping_mul(31).wrapping_add(2)),
            action_count,
        }
    }

    /// Number of discrete actions the policy head produces logits for.
    pub fn action_count(&self) -> usize {
        self.action_count
    }

    /// Runs the network on a batch of states, returning `(logits, values)`
    /// with shapes `[batch, actions]` and `[batch, 1]`.
    pub fn evaluate(&mut self, states: &Tensor, train: bool) -> (Tensor, Tensor) {
        let features = self.encoder.forward(states, train);
        let logits = self.policy_head.forward(&features, train);
        let values = self.value_head.forward(&features, train);
        (logits, values)
    }

    /// Backpropagates separate gradients for the two heads through the
    /// shared encoder.
    ///
    /// # Panics
    ///
    /// Panics if no `evaluate(..., true)` call preceded this, or the gradient
    /// shapes do not match the heads.
    pub fn backward_heads(&mut self, grad_logits: &Tensor, grad_values: &Tensor) {
        let g1 = self.policy_head.backward(grad_logits);
        let g2 = self.value_head.backward(grad_values);
        let grad_features = g1.add(&g2);
        self.encoder.backward(&grad_features);
    }

    /// Total number of trainable scalars.
    pub fn parameter_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_parameters(&mut |p| count += p.value.len());
        count
    }

    /// Snapshots every parameter (encoder, then policy head, then value
    /// head — the [`Layer::visit_parameters`] order) into an in-memory
    /// `rlplanner.policy/v1` file with the given metadata.
    pub fn export_policy(&mut self, metadata: Vec<(String, String)>) -> PolicyFile {
        PolicyFile::from_layer(self, metadata)
    }

    /// Copies a policy snapshot's tensors into this network.
    ///
    /// # Errors
    ///
    /// [`PolicyError::TensorCountMismatch`] / [`PolicyError::ShapeMismatch`]
    /// when the snapshot was saved from a different architecture; the
    /// network is untouched on error.
    pub fn import_policy(&mut self, file: &PolicyFile) -> Result<(), PolicyError> {
        file.apply_to(self)
    }

    /// Saves this network as a `rlplanner.policy/v1` file.
    ///
    /// # Errors
    ///
    /// [`PolicyError::Io`] when the file cannot be written.
    pub fn save(
        &mut self,
        path: impl AsRef<Path>,
        metadata: Vec<(String, String)>,
    ) -> Result<PolicyFile, PolicyError> {
        let file = self.export_policy(metadata);
        file.save(path)?;
        Ok(file)
    }

    /// Loads a `rlplanner.policy/v1` file into this network, returning the
    /// parsed file (metadata included).
    ///
    /// # Errors
    ///
    /// Any [`PolicyError`]: unreadable, corrupt, truncated, version-skewed
    /// or shape-mismatched files leave the network untouched.
    pub fn load(&mut self, path: impl AsRef<Path>) -> Result<PolicyFile, PolicyError> {
        let file = PolicyFile::load(path)?;
        self.import_policy(&file)?;
        Ok(file)
    }
}

impl std::fmt::Debug for ActorCritic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorCritic")
            .field("action_count", &self.action_count)
            .finish()
    }
}

impl Layer for ActorCritic {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (logits, values) = self.evaluate(input, train);
        let batch = logits.shape()[0];
        let mut data = Vec::with_capacity(batch * (self.action_count + 1));
        for b in 0..batch {
            data.extend_from_slice(logits.row(b).data());
            data.push(values.get(&[b, 0]));
        }
        Tensor::from_vec(data, vec![batch, self.action_count + 1])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let batch = grad_output.shape()[0];
        assert_eq!(
            grad_output.shape()[1],
            self.action_count + 1,
            "gradient must cover logits and value"
        );
        let mut grad_logits = Tensor::zeros(vec![batch, self.action_count]);
        let mut grad_values = Tensor::zeros(vec![batch, 1]);
        for b in 0..batch {
            for a in 0..self.action_count {
                grad_logits.set(&[b, a], grad_output.get(&[b, a]));
            }
            grad_values.set(&[b, 0], grad_output.get(&[b, self.action_count]));
        }
        self.backward_heads(&grad_logits, &grad_values);
        // The gradient with respect to the raw input is rarely needed for RL;
        // return an empty placeholder of the right batch size.
        Tensor::zeros(vec![batch, 0])
    }

    fn visit_parameters(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.encoder.visit_parameters(f);
        self.policy_head.visit_parameters(f);
        self.value_head.visit_parameters(f);
    }

    fn clone_box(&self) -> Box<dyn Layer + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlp_nn::layers::ReLU;
    use rlp_nn::Adam;

    fn model(features: usize, actions: usize) -> ActorCritic {
        let mut encoder = Sequential::new();
        encoder.push(Linear::new(4, features, 0));
        encoder.push(ReLU::new());
        ActorCritic::new(encoder, features, actions, 7)
    }

    #[test]
    fn evaluate_produces_correct_shapes() {
        let mut m = model(8, 5);
        let states = Tensor::zeros(vec![3, 4]);
        let (logits, values) = m.evaluate(&states, false);
        assert_eq!(logits.shape(), &[3, 5]);
        assert_eq!(values.shape(), &[3, 1]);
        assert_eq!(m.action_count(), 5);
    }

    #[test]
    fn layer_forward_concatenates_heads() {
        let mut m = model(8, 3);
        let out = m.forward(&Tensor::zeros(vec![2, 4]), false);
        assert_eq!(out.shape(), &[2, 4]);
    }

    #[test]
    fn shared_encoder_receives_gradients_from_both_heads() {
        let mut m = model(6, 2);
        let states = Tensor::from_vec(vec![0.5, -0.5, 1.0, 0.0], vec![1, 4]);
        m.evaluate(&states, true);
        // Gradient only on the value head.
        m.zero_grad();
        m.backward_heads(&Tensor::zeros(vec![1, 2]), &Tensor::full(vec![1, 1], 1.0));
        let mut encoder_grad_value_only = 0.0;
        m.encoder
            .visit_parameters(&mut |p| encoder_grad_value_only += p.grad.norm_sq());
        assert!(encoder_grad_value_only > 0.0);

        // Gradient only on the policy head.
        m.evaluate(&states, true);
        m.zero_grad();
        m.backward_heads(&Tensor::full(vec![1, 2], 1.0), &Tensor::zeros(vec![1, 1]));
        let mut encoder_grad_policy_only = 0.0;
        m.encoder
            .visit_parameters(&mut |p| encoder_grad_policy_only += p.grad.norm_sq());
        assert!(encoder_grad_policy_only > 0.0);
    }

    #[test]
    fn adam_can_optimise_the_whole_model() {
        let mut m = model(8, 2);
        let mut adam = Adam::new(0.01);
        let states = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], vec![1, 4]);
        // Push the value estimate towards 3.0.
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            m.zero_grad();
            let (_, values) = m.evaluate(&states, true);
            let err = values.get(&[0, 0]) - 3.0;
            last = err * err;
            m.backward_heads(
                &Tensor::zeros(vec![1, 2]),
                &Tensor::from_vec(vec![2.0 * err], vec![1, 1]),
            );
            adam.step(&mut m);
        }
        assert!(last < 1e-3, "value regression failed: {last}");
    }

    #[test]
    fn parameter_count_includes_heads() {
        let mut m = model(8, 5);
        // encoder: 4*8+8, policy: 8*5+5, value: 8*1+1
        assert_eq!(m.parameter_count(), (4 * 8 + 8) + (8 * 5 + 5) + (8 + 1));
    }

    #[test]
    #[should_panic(expected = "action count must be positive")]
    fn zero_actions_is_rejected() {
        ActorCritic::new(Sequential::new(), 4, 0, 0);
    }

    #[test]
    fn save_load_round_trips_the_exact_weights() {
        let path = std::env::temp_dir().join(format!(
            "rlp_rl_actor_critic_test_{}.policy",
            std::process::id()
        ));
        let mut trained = model(8, 5);
        let saved = trained
            .save(&path, vec![("schema".into(), rlp_nn::POLICY_SCHEMA.into())])
            .unwrap();
        // A differently-seeded network of the same architecture converges
        // to the trained weights exactly after loading.
        let mut encoder = Sequential::new();
        encoder.push(Linear::new(4, 8, 77));
        encoder.push(ReLU::new());
        let mut fresh = ActorCritic::new(encoder, 8, 5, 78);
        let loaded = fresh.load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, saved);
        let states = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.1], vec![1, 4]);
        let (logits_a, values_a) = trained.evaluate(&states, false);
        let (logits_b, values_b) = fresh.evaluate(&states, false);
        assert_eq!(logits_a, logits_b);
        assert_eq!(values_a, values_b);
    }

    #[test]
    fn load_from_a_mismatched_architecture_is_a_typed_error() {
        let mut wide = model(8, 5);
        let snapshot = wide.export_policy(Vec::new());
        let mut narrow = model(8, 3);
        assert!(matches!(
            narrow.import_policy(&snapshot).unwrap_err(),
            PolicyError::ShapeMismatch { .. }
        ));
    }
}
