//! Proximal policy optimisation with action masking.

use crate::actor_critic::ActorCritic;
use crate::buffer::{RolloutBuffer, Transition};
use crate::env::{Environment, Observation};
use crate::error::{ConfigError, RlError};
use crate::rnd::RandomNetworkDistillation;
use crate::vec_env::{episode_rng, ParallelEpisode, VecEnvPool};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlp_nn::layers::Layer;
use rlp_nn::optim::clip_grad_norm;
use rlp_nn::{Adam, Categorical, Tensor};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the PPO agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor.
    pub gamma: f64,
    /// GAE smoothing factor.
    pub gae_lambda: f64,
    /// Clipping range of the probability ratio.
    pub clip_epsilon: f32,
    /// Weight of the entropy bonus.
    pub entropy_coef: f32,
    /// Weight of the value loss.
    pub value_coef: f32,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Optimisation epochs per update.
    pub epochs: usize,
    /// Minibatch size per gradient step.
    pub minibatch_size: usize,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_epsilon: 0.2,
            entropy_coef: 0.01,
            value_coef: 0.5,
            learning_rate: 3e-4,
            epochs: 4,
            minibatch_size: 64,
            max_grad_norm: 0.5,
        }
    }
}

impl PpoConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] describing the first invalid field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(ConfigError::OutOfRange {
                field: "ppo.gamma",
                min: 0.0,
                max: 1.0,
                value: self.gamma,
            });
        }
        if !(0.0..=1.0).contains(&self.gae_lambda) {
            return Err(ConfigError::OutOfRange {
                field: "ppo.gae_lambda",
                min: 0.0,
                max: 1.0,
                value: self.gae_lambda,
            });
        }
        if self.clip_epsilon <= 0.0 {
            return Err(ConfigError::ExpectedPositive {
                field: "ppo.clip_epsilon",
                value: f64::from(self.clip_epsilon),
            });
        }
        if self.learning_rate <= 0.0 {
            return Err(ConfigError::ExpectedPositive {
                field: "ppo.learning_rate",
                value: f64::from(self.learning_rate),
            });
        }
        if self.epochs == 0 {
            return Err(ConfigError::ExpectedPositive {
                field: "ppo.epochs",
                value: 0.0,
            });
        }
        if self.minibatch_size == 0 {
            return Err(ConfigError::ExpectedPositive {
                field: "ppo.minibatch_size",
                value: 0.0,
            });
        }
        if self.max_grad_norm <= 0.0 {
            return Err(ConfigError::ExpectedPositive {
                field: "ppo.max_grad_norm",
                value: f64::from(self.max_grad_norm),
            });
        }
        Ok(())
    }
}

/// The outcome of sampling an action for one observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionSample {
    /// Sampled action index.
    pub action: usize,
    /// Log-probability of the action under the current policy.
    pub log_prob: f32,
    /// Value estimate of the observed state.
    pub value: f32,
}

/// Aggregate statistics of one PPO update.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PpoStats {
    /// Mean clipped policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
    /// Number of gradient steps taken.
    pub gradient_steps: usize,
}

/// One worker-collected episode: (slot, transitions, extrinsic reward,
/// caller artifact).
type CollectedEpisode<T> = (usize, Vec<Transition>, f64, T);

/// A PPO agent wrapping an [`ActorCritic`] model.
pub struct PpoAgent {
    model: ActorCritic,
    optimizer: Adam,
    config: PpoConfig,
    rng: ChaCha8Rng,
}

impl PpoAgent {
    /// Creates an agent.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(model: ActorCritic, config: PpoConfig, seed: u64) -> Self {
        config.validate().expect("invalid PPO configuration");
        let optimizer = Adam::new(config.learning_rate);
        Self {
            model,
            optimizer,
            config,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Immutable access to the underlying model.
    pub fn model(&self) -> &ActorCritic {
        &self.model
    }

    /// Mutable access to the underlying model (e.g. for checkpointing).
    pub fn model_mut(&mut self) -> &mut ActorCritic {
        &mut self.model
    }

    fn batch_of_one(observation: &Observation) -> Tensor {
        let mut shape = vec![1];
        shape.extend_from_slice(observation.state.shape());
        observation.state.reshape(shape)
    }

    /// Samples a masked action for one observation with an explicit model
    /// and rng — the kernel shared by the serial and parallel collectors.
    fn sample_masked(
        model: &mut ActorCritic,
        observation: &Observation,
        rng: &mut ChaCha8Rng,
    ) -> ActionSample {
        let states = Self::batch_of_one(observation);
        let (logits, values) = model.evaluate(&states, false);
        let dist = Categorical::from_logits(logits.row(0).data(), Some(&observation.action_mask));
        let action = dist.sample(rng);
        ActionSample {
            action,
            log_prob: dist.log_prob(action),
            value: values.get(&[0, 0]),
        }
    }

    /// Samples an action from the masked policy for a single observation.
    pub fn select_action(&mut self, observation: &Observation) -> ActionSample {
        Self::sample_masked(&mut self.model, observation, &mut self.rng)
    }

    /// Picks the most probable feasible action (no exploration).
    pub fn greedy_action(&mut self, observation: &Observation) -> usize {
        let states = Self::batch_of_one(observation);
        let (logits, _) = self.model.evaluate(&states, false);
        Categorical::from_logits(logits.row(0).data(), Some(&observation.action_mask)).argmax()
    }

    /// Value estimate of a single observation.
    pub fn value_of(&mut self, observation: &Observation) -> f32 {
        let states = Self::batch_of_one(observation);
        let (_, values) = self.model.evaluate(&states, false);
        values.get(&[0, 0])
    }

    /// Plays one full episode in `env`, appending transitions to `buffer`.
    ///
    /// When an RND module is supplied, intrinsic rewards are added to each
    /// transition and the predictor network is trained on the visited states
    /// at the end of the episode (the "RLPlanner (RND)" variant).
    ///
    /// Returns the total extrinsic episode reward.
    pub fn collect_episode(
        &mut self,
        env: &mut dyn Environment,
        buffer: &mut RolloutBuffer,
        mut rnd: Option<&mut RandomNetworkDistillation>,
    ) -> f64 {
        let mut observation = env.reset();
        let mut episode_reward = 0.0;
        let mut visited_states = Vec::new();
        loop {
            let sample = self.select_action(&observation);
            let step = env.step(sample.action);
            episode_reward += step.reward;
            let intrinsic = match (&mut rnd, &step.observation) {
                (Some(rnd), Some(next)) => {
                    visited_states.push(next.state.clone());
                    rnd.bonus(&next.state)
                }
                _ => 0.0,
            };
            buffer.push(Transition {
                state: observation.state.clone(),
                action_mask: observation.action_mask.clone(),
                action: sample.action,
                log_prob: sample.log_prob,
                value: sample.value,
                reward: step.reward,
                intrinsic_reward: intrinsic,
                done: step.done,
            });
            if step.done {
                break;
            }
            observation = step
                .observation
                .expect("non-terminal step must produce an observation");
        }
        if let Some(rnd) = rnd {
            if !visited_states.is_empty() {
                let refs: Vec<&Tensor> = visited_states.iter().collect();
                rnd.update(&refs);
            }
        }
        episode_reward
    }

    /// Plays one episode on one environment with a dedicated policy replica
    /// and per-episode rng; the worker body of the parallel collector.
    fn run_episode<E: Environment>(
        model: &mut ActorCritic,
        env: &mut E,
        rng: &mut ChaCha8Rng,
    ) -> (Vec<Transition>, f64) {
        let mut observation = env.reset();
        let mut transitions = Vec::new();
        let mut episode_reward = 0.0;
        loop {
            let sample = Self::sample_masked(model, &observation, rng);
            let step = env.step(sample.action);
            episode_reward += step.reward;
            transitions.push(Transition {
                state: observation.state.clone(),
                action_mask: observation.action_mask.clone(),
                action: sample.action,
                log_prob: sample.log_prob,
                value: sample.value,
                reward: step.reward,
                intrinsic_reward: 0.0,
                done: step.done,
            });
            if step.done {
                break;
            }
            observation = step
                .observation
                .expect("non-terminal step must produce an observation");
        }
        (transitions, episode_reward)
    }

    /// Collects `episodes` episodes across the pool's environments with a
    /// `std::thread::scope` worker per environment, appending all
    /// transitions to `buffer` **in episode order**.
    ///
    /// Episode `pool.episodes_started() + s` runs on environment
    /// `s % pool.env_count()` with its own action-sampling stream
    /// ([`episode_rng`]), and each worker steps a private clone of the
    /// policy network (a single-environment pool skips the threads and
    /// clones entirely and steps the agent's model inline). Consequently
    /// the collected trajectory — transitions, rewards, everything — is
    /// bit-identical for *any* pool size, and deterministic run-for-run
    /// under a fixed run seed (provided the environments are reset-pure;
    /// see [`VecEnvPool`]).
    ///
    /// When an RND module is supplied, intrinsic rewards and predictor
    /// updates are applied in a serial post-pass in episode order, which
    /// reproduces exactly what [`PpoAgent::collect_episode`] would have done
    /// episode by episode (action sampling never depends on the bonuses).
    ///
    /// `artifact` is called on each environment right after it finishes an
    /// episode (from the worker thread), letting callers extract per-episode
    /// results — e.g. the final placement — without owning the environments.
    ///
    /// Returns one [`ParallelEpisode`] per episode, in episode order.
    pub fn collect_episodes_parallel<E, T, F>(
        &mut self,
        pool: &mut VecEnvPool<E>,
        episodes: usize,
        buffer: &mut RolloutBuffer,
        rnd: Option<&mut RandomNetworkDistillation>,
        artifact: F,
    ) -> Vec<ParallelEpisode<T>>
    where
        E: Environment + Send,
        T: Send,
        F: Fn(&E) -> T + Sync,
    {
        if episodes == 0 {
            return Vec::new();
        }
        let workers = pool.env_count().min(episodes);
        let base = pool.episodes_started();
        let run_seed = pool.run_seed();

        // Worker w owns environment w and runs episode slots w, w+workers,
        // w+2*workers, ... — a static round-robin, so the slot→env map is
        // independent of scheduling.
        let per_worker: Vec<Vec<CollectedEpisode<T>>> = if workers == 1 {
            // Single-worker fast path: step the agent's own model inline,
            // skipping the thread spawn and the per-batch policy clone.
            // Identical output to the threaded path — the per-episode
            // streams make the trajectory worker-independent (asserted by
            // the pool-size invariance tests).
            let env = &mut pool.envs_mut()[0];
            let mut collected = Vec::with_capacity(episodes);
            for slot in 0..episodes {
                let mut rng = episode_rng(run_seed, base + slot as u64);
                let (transitions, reward) = Self::run_episode(&mut self.model, env, &mut rng);
                collected.push((slot, transitions, reward, artifact(&*env)));
            }
            vec![collected]
        } else {
            let model = &self.model;
            let artifact = &artifact;
            std::thread::scope(|scope| {
                let handles: Vec<_> = pool
                    .envs_mut()
                    .iter_mut()
                    .take(workers)
                    .enumerate()
                    .map(|(w, env)| {
                        let mut model = model.clone();
                        scope.spawn(move || {
                            let mut collected = Vec::new();
                            let mut slot = w;
                            while slot < episodes {
                                let mut rng = episode_rng(run_seed, base + slot as u64);
                                let (transitions, reward) =
                                    Self::run_episode(&mut model, env, &mut rng);
                                collected.push((slot, transitions, reward, artifact(&*env)));
                                slot += workers;
                            }
                            collected
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("rollout worker panicked"))
                    .collect()
            })
        };

        // Merge back into episode order.
        let mut ordered: Vec<Option<CollectedEpisode<T>>> = (0..episodes).map(|_| None).collect();
        for (w, collected) in per_worker.into_iter().enumerate() {
            for (slot, transitions, reward, art) in collected {
                ordered[slot] = Some((w, transitions, reward, art));
            }
        }

        // RND post-pass: bonuses and predictor updates in episode order,
        // replicating the serial collector's exact call sequence.
        if let Some(rnd) = rnd {
            for entry in ordered.iter_mut() {
                let (_, transitions, _, _) = entry.as_mut().expect("every slot was collected");
                if transitions.len() > 1 {
                    let visited: Vec<Tensor> =
                        transitions[1..].iter().map(|t| t.state.clone()).collect();
                    for (j, state) in visited.iter().enumerate() {
                        transitions[j].intrinsic_reward = rnd.bonus(state);
                    }
                    let refs: Vec<&Tensor> = visited.iter().collect();
                    rnd.update(&refs);
                }
            }
        }

        let mut reports = Vec::with_capacity(episodes);
        for (slot, entry) in ordered.into_iter().enumerate() {
            let (env, transitions, reward, art) = entry.expect("every slot was collected");
            let count = transitions.len();
            for transition in transitions {
                buffer.push(transition);
            }
            reports.push(ParallelEpisode {
                episode: base + slot as u64,
                env,
                reward,
                transitions: count,
                artifact: art,
            });
        }
        pool.advance(episodes as u64);
        reports
    }

    /// Runs a PPO update on the collected rollout and clears nothing — the
    /// caller decides when to clear the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyRollout`] if the buffer is empty.
    pub fn update(&mut self, buffer: &mut RolloutBuffer) -> Result<PpoStats, RlError> {
        if buffer.is_empty() {
            return Err(RlError::EmptyRollout);
        }
        buffer.compute_gae(self.config.gamma, self.config.gae_lambda, 0.0);
        let n = buffer.len();
        let mut indices: Vec<usize> = (0..n).collect();
        let mut stats = PpoStats::default();
        let mut accumulated_entropy = 0.0f32;
        let mut entropy_samples = 0usize;

        for _ in 0..self.config.epochs {
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(self.config.minibatch_size) {
                let states = buffer.stacked_states_for(chunk);
                self.model.zero_grad();
                let (logits, values) = self.model.evaluate(&states, true);
                let batch = chunk.len();
                let actions = self.model.action_count();
                let mut grad_logits = Tensor::zeros(vec![batch, actions]);
                let mut grad_values = Tensor::zeros(vec![batch, 1]);
                let mut policy_loss = 0.0f32;
                let mut value_loss = 0.0f32;

                for (row, &idx) in chunk.iter().enumerate() {
                    let transition = &buffer.transitions()[idx];
                    let advantage = buffer.advantages()[idx];
                    let target_return = buffer.returns()[idx];
                    let dist = Categorical::from_logits(
                        logits.row(row).data(),
                        Some(&transition.action_mask),
                    );
                    let new_log_prob = dist.log_prob(transition.action);
                    let ratio = (new_log_prob - transition.log_prob).exp();
                    let clipped_ratio = ratio.clamp(
                        1.0 - self.config.clip_epsilon,
                        1.0 + self.config.clip_epsilon,
                    );
                    let unclipped = ratio * advantage;
                    let clipped = clipped_ratio * advantage;
                    policy_loss += -unclipped.min(clipped);

                    // Gradient of -min(unclipped, clipped) wrt the new log-prob:
                    // zero when the clipped branch is active.
                    let d_loss_d_logp = if unclipped <= clipped {
                        -ratio * advantage
                    } else {
                        0.0
                    };
                    let logp_grad = dist.log_prob_grad_logits(transition.action);
                    let entropy_grad = dist.entropy_grad_logits();
                    for a in 0..actions {
                        let g = d_loss_d_logp * logp_grad[a]
                            - self.config.entropy_coef * entropy_grad[a];
                        grad_logits.set(&[row, a], g / batch as f32);
                    }

                    let value = values.get(&[row, 0]);
                    let v_err = value - target_return;
                    value_loss += v_err * v_err;
                    grad_values.set(
                        &[row, 0],
                        self.config.value_coef * 2.0 * v_err / batch as f32,
                    );

                    accumulated_entropy += dist.entropy();
                    entropy_samples += 1;
                }

                self.model.backward_heads(&grad_logits, &grad_values);
                clip_grad_norm(&mut self.model, self.config.max_grad_norm);
                self.optimizer.step(&mut self.model);

                stats.policy_loss += policy_loss / batch as f32;
                stats.value_loss += value_loss / batch as f32;
                stats.gradient_steps += 1;
            }
        }

        if stats.gradient_steps > 0 {
            stats.policy_loss /= stats.gradient_steps as f32;
            stats.value_loss /= stats.gradient_steps as f32;
        }
        if entropy_samples > 0 {
            stats.entropy = accumulated_entropy / entropy_samples as f32;
        }
        Ok(stats)
    }
}

impl std::fmt::Debug for PpoAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PpoAgent")
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepResult;
    use rlp_nn::layers::{Linear, ReLU, Sequential};

    /// A one-step bandit: three actions with rewards 0.0, 1.0 and 0.2.
    struct Bandit {
        mask: Vec<bool>,
    }

    impl Bandit {
        fn new() -> Self {
            Self {
                mask: vec![true, true, true],
            }
        }
        fn masked() -> Self {
            Self {
                mask: vec![true, false, true],
            }
        }
    }

    impl Environment for Bandit {
        fn reset(&mut self) -> Observation {
            Observation::new(Tensor::from_vec(vec![1.0, 0.0], vec![2]), self.mask.clone())
        }
        fn step(&mut self, action: usize) -> StepResult {
            assert!(self.mask[action], "agent picked a masked action");
            let reward = match action {
                1 => 1.0,
                2 => 0.2,
                _ => 0.0,
            };
            StepResult {
                observation: None,
                reward,
                done: true,
            }
        }
        fn action_count(&self) -> usize {
            3
        }
        fn observation_shape(&self) -> Vec<usize> {
            vec![2]
        }
    }

    fn bandit_agent(seed: u64) -> PpoAgent {
        let mut encoder = Sequential::new();
        encoder.push(Linear::new(2, 16, seed));
        encoder.push(ReLU::new());
        let model = ActorCritic::new(encoder, 16, 3, seed + 1);
        let config = PpoConfig {
            learning_rate: 0.01,
            epochs: 4,
            minibatch_size: 16,
            entropy_coef: 0.001,
            ..PpoConfig::default()
        };
        PpoAgent::new(model, config, seed)
    }

    #[test]
    fn ppo_learns_the_best_bandit_arm() {
        let mut agent = bandit_agent(3);
        let mut env = Bandit::new();
        for _ in 0..40 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..16 {
                agent.collect_episode(&mut env, &mut buffer, None);
            }
            agent.update(&mut buffer).expect("non-empty rollout");
        }
        let obs = env.reset();
        assert_eq!(
            agent.greedy_action(&obs),
            1,
            "agent failed to learn the best arm"
        );
    }

    #[test]
    fn masked_actions_are_never_selected() {
        let mut agent = bandit_agent(5);
        let mut env = Bandit::masked();
        // The environment asserts that masked actions are never stepped.
        for _ in 0..10 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..8 {
                agent.collect_episode(&mut env, &mut buffer, None);
            }
            agent.update(&mut buffer).expect("non-empty rollout");
        }
        let obs = env.reset();
        let action = agent.greedy_action(&obs);
        assert_ne!(action, 1);
    }

    #[test]
    fn value_estimate_converges_towards_mean_reward() {
        let mut agent = bandit_agent(9);
        let mut env = Bandit::new();
        for _ in 0..50 {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..16 {
                agent.collect_episode(&mut env, &mut buffer, None);
            }
            agent.update(&mut buffer).expect("non-empty rollout");
        }
        let obs = env.reset();
        let value = agent.value_of(&obs);
        // Once the policy prefers arm 1, the value should approach 1.0.
        assert!(value > 0.5, "value {value}");
    }

    #[test]
    fn update_reports_statistics() {
        let mut agent = bandit_agent(1);
        let mut env = Bandit::new();
        let mut buffer = RolloutBuffer::new();
        for _ in 0..8 {
            agent.collect_episode(&mut env, &mut buffer, None);
        }
        let stats = agent.update(&mut buffer).expect("non-empty rollout");
        assert!(stats.gradient_steps > 0);
        assert!(stats.entropy > 0.0);
        assert!(stats.value_loss >= 0.0);
    }

    #[test]
    fn collect_episode_accumulates_reward() {
        let mut agent = bandit_agent(2);
        let mut env = Bandit::new();
        let mut buffer = RolloutBuffer::new();
        let reward = agent.collect_episode(&mut env, &mut buffer, None);
        assert_eq!(buffer.len(), 1);
        assert!((0.0..=1.0).contains(&reward));
    }

    #[test]
    fn update_on_an_empty_rollout_is_a_typed_error() {
        let mut agent = bandit_agent(0);
        let err = agent.update(&mut RolloutBuffer::new()).unwrap_err();
        assert_eq!(err, RlError::EmptyRollout);
    }

    /// All trainable scalars of the agent's model, flattened.
    fn policy_parameters(agent: &mut PpoAgent) -> Vec<f32> {
        let mut params = Vec::new();
        agent
            .model_mut()
            .visit_parameters(&mut |p| params.extend_from_slice(p.value.data()));
        params
    }

    /// A chain whose episode length depends on the sampled actions: each
    /// step advances by `action + 1` positions and the episode ends at
    /// position 4. Variable lengths stress the order-stable merge.
    struct Chain {
        pos: usize,
    }

    impl Chain {
        fn new() -> Self {
            Self { pos: 0 }
        }
        fn observe(&self) -> Observation {
            Observation::new(
                Tensor::from_vec(vec![self.pos as f32 / 4.0, 1.0], vec![2]),
                vec![true; 3],
            )
        }
    }

    impl Environment for Chain {
        fn reset(&mut self) -> Observation {
            self.pos = 0;
            self.observe()
        }
        fn step(&mut self, action: usize) -> StepResult {
            self.pos += action + 1;
            if self.pos >= 4 {
                StepResult {
                    observation: None,
                    reward: f64::from(self.pos as u32),
                    done: true,
                }
            } else {
                StepResult {
                    observation: Some(self.observe()),
                    reward: -0.1,
                    done: false,
                }
            }
        }
        fn action_count(&self) -> usize {
            3
        }
        fn observation_shape(&self) -> Vec<usize> {
            vec![2]
        }
    }

    #[test]
    fn parallel_collection_is_pool_size_invariant() {
        let run = |pool_size: usize, use_rnd: bool| {
            let mut agent = bandit_agent(11);
            let mut rnd = use_rnd.then(|| crate::RandomNetworkDistillation::new(2, 8, 4, 0.5, 3));
            let envs: Vec<Chain> = (0..pool_size).map(|_| Chain::new()).collect();
            let mut pool = VecEnvPool::new(envs, 99).unwrap();
            let mut buffer = RolloutBuffer::new();
            let reports =
                agent.collect_episodes_parallel(&mut pool, 8, &mut buffer, rnd.as_mut(), |_| ());
            agent.update(&mut buffer).unwrap();
            let rewards: Vec<f64> = reports.iter().map(|r| r.reward).collect();
            (
                rewards,
                buffer.transitions().to_vec(),
                policy_parameters(&mut agent),
            )
        };
        for use_rnd in [false, true] {
            let serial = run(1, use_rnd);
            assert_eq!(
                serial,
                run(2, use_rnd),
                "pool of 2 diverged (rnd={use_rnd})"
            );
            assert_eq!(
                serial,
                run(4, use_rnd),
                "pool of 4 diverged (rnd={use_rnd})"
            );
        }
        // The chain really produces multi-step episodes (otherwise the RND
        // post-pass would be vacuous).
        let (_, transitions, _) = run(2, true);
        assert!(transitions.len() > 8);
        assert!(transitions.iter().any(|t| t.intrinsic_reward != 0.0));
    }

    #[test]
    fn parallel_reports_are_in_episode_order_with_round_robin_envs() {
        let mut agent = bandit_agent(4);
        let envs: Vec<Bandit> = (0..3).map(|_| Bandit::new()).collect();
        let mut pool = VecEnvPool::new(envs, 5).unwrap();
        let mut buffer = RolloutBuffer::new();
        let reports = agent.collect_episodes_parallel(&mut pool, 7, &mut buffer, None, |_| ());
        assert_eq!(reports.len(), 7);
        assert_eq!(buffer.len(), 7);
        for (slot, report) in reports.iter().enumerate() {
            assert_eq!(report.episode, slot as u64);
            assert_eq!(report.env, slot % 3);
            assert_eq!(report.transitions, 1);
        }
        assert_eq!(pool.episodes_started(), 7);
        // A second pass continues the global episode numbering.
        let reports = agent.collect_episodes_parallel(&mut pool, 2, &mut buffer, None, |_| ());
        assert_eq!(reports[0].episode, 7);
        assert_eq!(reports[1].episode, 8);
    }

    #[test]
    fn parallel_collection_extracts_artifacts_from_the_finished_env() {
        let mut agent = bandit_agent(6);
        let mut pool = VecEnvPool::new(vec![Bandit::new(), Bandit::new()], 1).unwrap();
        let mut buffer = RolloutBuffer::new();
        let reports =
            agent.collect_episodes_parallel(&mut pool, 4, &mut buffer, None, |env| env.mask.len());
        assert!(reports.iter().all(|r| r.artifact == 3));
    }

    #[test]
    fn parallel_collection_of_zero_episodes_is_a_no_op() {
        let mut agent = bandit_agent(6);
        let mut pool = VecEnvPool::new(vec![Bandit::new()], 1).unwrap();
        let mut buffer = RolloutBuffer::new();
        let reports: Vec<crate::ParallelEpisode<()>> =
            agent.collect_episodes_parallel(&mut pool, 0, &mut buffer, None, |_| ());
        assert!(reports.is_empty());
        assert!(buffer.is_empty());
        assert_eq!(pool.episodes_started(), 0);
    }

    #[test]
    fn invalid_config_is_rejected_with_a_typed_error() {
        let gamma_err = PpoConfig {
            gamma: 1.5,
            ..PpoConfig::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(
            gamma_err,
            ConfigError::OutOfRange {
                field: "ppo.gamma",
                ..
            }
        ));
        let epochs_err = PpoConfig {
            epochs: 0,
            ..PpoConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(epochs_err.field(), "ppo.epochs");
        assert!(PpoConfig::default().validate().is_ok());
    }
}
