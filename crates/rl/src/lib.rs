//! Reinforcement-learning algorithms for RLPlanner.
//!
//! This crate is problem-agnostic: it knows nothing about chiplets. It
//! provides the pieces the paper's agent is assembled from:
//!
//! * [`Environment`] — the interface a sequential decision problem exposes
//!   (observations carry an explicit *action mask*, mirroring RLPlanner's
//!   masking of infeasible placement cells).
//! * [`ActorCritic`] — a policy/value network with a shared feature encoder
//!   and two linear heads, exactly the agent architecture in the paper.
//! * [`RolloutBuffer`] — trajectory storage with generalised advantage
//!   estimation (GAE).
//! * [`PpoAgent`] — proximal policy optimisation with clipped surrogate
//!   objective, entropy bonus, value loss and gradient clipping.
//! * [`VecEnvPool`] — N independent environments plus the per-episode
//!   seeding discipline that makes
//!   [`PpoAgent::collect_episodes_parallel`] produce the bit-identical
//!   trajectory at any parallelism level.
//! * [`RandomNetworkDistillation`] — the RND exploration bonus used by the
//!   "RLPlanner (RND)" variant.
//! * [`TrainingObserver`] — streaming progress hook training loops report
//!   episodes and updates through.
//! * [`ConfigError`] — the typed validation error shared by the
//!   configuration structs of this crate and its consumers.
//!
//! # Examples
//!
//! ```
//! use rlp_nn::layers::{Linear, ReLU, Sequential};
//! use rlp_rl::{ActorCritic, PpoAgent, PpoConfig};
//!
//! let mut encoder = Sequential::new();
//! encoder.push(Linear::new(4, 16, 0));
//! encoder.push(ReLU::new());
//! let model = ActorCritic::new(encoder, 16, 3, 1);
//! let agent = PpoAgent::new(model, PpoConfig::default(), 42);
//! assert_eq!(agent.config().clip_epsilon, 0.2);
//! ```

pub mod actor_critic;
pub mod buffer;
pub mod env;
pub mod error;
pub mod ppo;
pub mod progress;
pub mod rnd;
pub mod vec_env;

pub use actor_critic::ActorCritic;
pub use buffer::{RolloutBuffer, Transition};
pub use env::{Environment, Observation, StepResult};
pub use error::{ConfigError, RlError};
pub use ppo::{ActionSample, PpoAgent, PpoConfig, PpoStats};
pub use progress::{NullTrainingObserver, TeeTrainingObserver, TrainingObserver};
pub use rnd::RandomNetworkDistillation;
pub use vec_env::{episode_rng, ParallelEpisode, VecEnvPool};
