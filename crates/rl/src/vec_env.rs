//! A pool of independent environments for vectorised rollout collection.
//!
//! [`VecEnvPool`] owns N interchangeable [`Environment`] instances and the
//! deterministic seeding discipline that makes parallel collection
//! reproducible: every episode draws its actions from its *own*
//! [`ChaCha8Rng`] stream, derived from the pool's run seed and the episode's
//! global index by [`episode_rng`]. Because a stream depends only on
//! `(run_seed, episode_index)` — never on which worker ran the episode or
//! how long earlier episodes were — a collection pass over the pool produces
//! the bit-identical trajectory for **any** pool size, and
//! [`crate::PpoAgent::collect_episodes_parallel`] merges transitions back in
//! episode order so downstream advantage estimation is order-stable too.
//!
//! The pool requires its environments to be *reset-pure*: after
//! [`Environment::reset`], behaviour must depend only on the actions taken
//! in the current episode (no hidden cross-episode state). The chiplet
//! floorplanning environment satisfies this by construction.

use crate::env::Environment;
use crate::error::RlError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The action-sampling stream of one episode: a [`ChaCha8Rng`] keyed by the
/// run seed and the episode's global (run-wide) index.
///
/// The index is decorrelated from the seed with a golden-ratio multiply
/// before the SplitMix64 expansion inside `seed_from_u64`, so neighbouring
/// episodes and neighbouring run seeds produce unrelated streams.
pub fn episode_rng(run_seed: u64, episode: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(
        run_seed ^ episode.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// One episode collected by a parallel rollout pass, in episode order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelEpisode<T> {
    /// Global (run-wide) episode index; also the key of the episode's
    /// action-sampling stream.
    pub episode: u64,
    /// Index of the pool environment that collected the episode.
    pub env: usize,
    /// Total extrinsic episode reward.
    pub reward: f64,
    /// Number of transitions the episode appended to the rollout buffer.
    pub transitions: usize,
    /// Caller-defined per-episode artifact, extracted from the environment
    /// right after the episode ended (e.g. the final placement).
    pub artifact: T,
}

/// A pool of N independent environments; see the [module docs](self).
#[derive(Debug)]
pub struct VecEnvPool<E> {
    envs: Vec<E>,
    run_seed: u64,
    next_episode: u64,
}

impl<E: Environment> VecEnvPool<E> {
    /// Wraps `envs` (all reset-pure replicas of the same problem) with the
    /// run seed every episode stream is derived from.
    ///
    /// # Errors
    ///
    /// Returns [`RlError::EmptyPool`] when `envs` is empty.
    pub fn new(envs: Vec<E>, run_seed: u64) -> Result<Self, RlError> {
        if envs.is_empty() {
            return Err(RlError::EmptyPool);
        }
        Ok(Self {
            envs,
            run_seed,
            next_episode: 0,
        })
    }

    /// Number of environments in the pool (the maximum rollout parallelism).
    pub fn env_count(&self) -> usize {
        self.envs.len()
    }

    /// The run seed episode streams are derived from.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// Global index the next collected episode will receive.
    pub fn episodes_started(&self) -> u64 {
        self.next_episode
    }

    /// The pooled environments.
    pub fn envs(&self) -> &[E] {
        &self.envs
    }

    /// Mutable access to the pooled environments (e.g. for greedy
    /// evaluation rollouts outside the collection pass).
    pub fn envs_mut(&mut self) -> &mut [E] {
        &mut self.envs
    }

    /// Advances the global episode counter after a collection pass.
    pub(crate) fn advance(&mut self, episodes: u64) {
        self.next_episode += episodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Observation, StepResult};
    use rand::RngCore;
    use rlp_nn::Tensor;

    #[derive(Debug)]
    struct Trivial;

    impl Environment for Trivial {
        fn reset(&mut self) -> Observation {
            Observation::new(Tensor::zeros(vec![1]), vec![true])
        }
        fn step(&mut self, _action: usize) -> StepResult {
            StepResult {
                observation: None,
                reward: 0.0,
                done: true,
            }
        }
        fn action_count(&self) -> usize {
            1
        }
        fn observation_shape(&self) -> Vec<usize> {
            vec![1]
        }
    }

    #[test]
    fn empty_pool_is_a_typed_error() {
        let err = VecEnvPool::<Trivial>::new(Vec::new(), 0).unwrap_err();
        assert_eq!(err, RlError::EmptyPool);
    }

    #[test]
    fn pool_tracks_its_configuration() {
        let mut pool = VecEnvPool::new(vec![Trivial, Trivial], 42).unwrap();
        assert_eq!(pool.env_count(), 2);
        assert_eq!(pool.run_seed(), 42);
        assert_eq!(pool.episodes_started(), 0);
        pool.advance(5);
        assert_eq!(pool.episodes_started(), 5);
        assert_eq!(pool.envs().len(), pool.envs_mut().len());
    }

    #[test]
    fn episode_streams_are_deterministic_and_distinct() {
        let draws = |seed, episode| {
            let mut rng = episode_rng(seed, episode);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        // Same key, same stream.
        assert_eq!(draws(7, 0), draws(7, 0));
        // Neighbouring episodes and seeds diverge.
        assert_ne!(draws(7, 0), draws(7, 1));
        assert_ne!(draws(7, 0), draws(8, 0));
    }
}
