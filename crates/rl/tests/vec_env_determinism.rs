//! Property tests for the vectorised rollout engine.
//!
//! The load-bearing property of [`VecEnvPool`] +
//! [`PpoAgent::collect_episodes_parallel`] is *pool-size invariance*: every
//! episode's action stream is keyed by `(run_seed, episode_index)` alone and
//! transitions merge back in episode order, so for a fixed seed the
//! collected trajectory — and therefore the policy parameters after a PPO
//! update — must be bit-identical whether 1, 2 or 4 environments collected
//! it. This file checks that end to end over randomised network widths,
//! environment shapes, episode counts and seeds.

use proptest::prelude::*;
use rlp_nn::layers::{Layer, Linear, ReLU, Sequential};
use rlp_nn::Tensor;
use rlp_rl::{
    ActorCritic, Environment, Observation, PpoAgent, PpoConfig, RolloutBuffer, StepResult,
    VecEnvPool,
};

/// A random-walk environment with configurable span and action count: each
/// step advances the walker by `action + 1` cells and the episode ends when
/// the span is crossed, so the episode *length* depends on the sampled
/// actions — the hardest case for an order-stable merge.
struct Walk {
    span: usize,
    actions: usize,
    pos: usize,
}

impl Walk {
    fn new(span: usize, actions: usize) -> Self {
        Self {
            span,
            actions,
            pos: 0,
        }
    }

    fn observe(&self) -> Observation {
        let frac = self.pos as f32 / self.span as f32;
        Observation::new(
            Tensor::from_vec(vec![frac, 1.0 - frac], vec![2]),
            vec![true; self.actions],
        )
    }
}

impl Environment for Walk {
    fn reset(&mut self) -> Observation {
        self.pos = 0;
        self.observe()
    }

    fn step(&mut self, action: usize) -> StepResult {
        self.pos += action + 1;
        if self.pos >= self.span {
            StepResult {
                observation: None,
                reward: -(self.pos as f64 - self.span as f64) - 1.0,
                done: true,
            }
        } else {
            StepResult {
                observation: Some(self.observe()),
                reward: -0.05,
                done: false,
            }
        }
    }

    fn action_count(&self) -> usize {
        self.actions
    }

    fn observation_shape(&self) -> Vec<usize> {
        vec![2]
    }
}

fn walk_agent(seed: u64, hidden: usize, actions: usize) -> PpoAgent {
    let mut encoder = Sequential::new();
    encoder.push(Linear::new(2, hidden, seed));
    encoder.push(ReLU::new());
    let model = ActorCritic::new(encoder, hidden, actions, seed.wrapping_add(1));
    let config = PpoConfig {
        learning_rate: 0.01,
        epochs: 2,
        minibatch_size: 8,
        ..PpoConfig::default()
    };
    PpoAgent::new(model, config, seed)
}

/// Collects `episodes` episodes on a pool of `pool_size` envs, runs one PPO
/// update and returns (episode rewards, post-update policy parameters).
fn train_once(
    pool_size: usize,
    seed: u64,
    hidden: usize,
    span: usize,
    actions: usize,
    episodes: usize,
) -> (Vec<f64>, Vec<f32>) {
    let mut agent = walk_agent(seed, hidden, actions);
    let envs: Vec<Walk> = (0..pool_size).map(|_| Walk::new(span, actions)).collect();
    let mut pool = VecEnvPool::new(envs, seed).expect("non-empty pool");
    let mut buffer = RolloutBuffer::new();
    let reports = agent.collect_episodes_parallel(&mut pool, episodes, &mut buffer, None, |_| ());
    agent.update(&mut buffer).expect("non-empty rollout");
    let rewards = reports.iter().map(|r| r.reward).collect();
    let mut params = Vec::new();
    agent
        .model_mut()
        .visit_parameters(&mut |p| params.extend_from_slice(p.value.data()));
    (rewards, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any configuration under a fixed seed, pools of 1, 2 and 4
    /// environments produce identical rewards and identical post-update
    /// policy parameters, bit for bit.
    #[test]
    fn pool_sizes_one_two_four_produce_identical_policies(
        seed in 0u64..1_000_000,
        hidden in 4usize..12,
        span in 3usize..8,
        actions in 2usize..5,
        episodes in 4usize..12,
    ) {
        let single = train_once(1, seed, hidden, span, actions, episodes);
        let double = train_once(2, seed, hidden, span, actions, episodes);
        let quad = train_once(4, seed, hidden, span, actions, episodes);
        prop_assert_eq!(&single, &double);
        prop_assert_eq!(&single, &quad);
    }

    /// The same pool re-run under the same seed reproduces itself exactly
    /// (run-for-run determinism), and a different seed diverges.
    #[test]
    fn parallel_collection_is_run_for_run_deterministic(
        seed in 0u64..1_000_000,
        pool_size in 1usize..5,
    ) {
        let first = train_once(pool_size, seed, 8, 5, 3, 6);
        let second = train_once(pool_size, seed, 8, 5, 3, 6);
        prop_assert_eq!(&first, &second);
        let other = train_once(pool_size, seed.wrapping_add(1), 8, 5, 3, 6);
        prop_assert_ne!(&first.1, &other.1);
    }
}
