//! Fast wiring smoke test: a 2-chiplet system through the whole stack —
//! geometry, reward, thermal solve, environment, and a full facade solve
//! (policy network, PPO episodes, outcome assembly) — with budgets tiny
//! enough to finish in a couple of seconds. CI runs this first to catch
//! crate-wiring regressions without waiting for the full integration suite.

use rlp_chiplet::{Chiplet, ChipletSystem, Net};
use rlp_rl::Environment;
use rlp_thermal::{GridThermalSolver, ThermalBackend, ThermalConfig};
use rlplanner::{
    Budget, EnvConfig, FloorplanEnv, FloorplanRequest, Method, RewardCalculator, RewardConfig,
    RlPlannerConfig,
};

fn two_chiplet_system() -> ChipletSystem {
    let mut system = ChipletSystem::new("smoke", 20.0, 20.0);
    let cpu = system.add_chiplet(Chiplet::new("cpu", 6.0, 6.0, 20.0));
    let mem = system.add_chiplet(Chiplet::new("mem", 4.0, 4.0, 4.0));
    system.add_net(Net::new(cpu, mem, 32));
    system
}

fn tiny_env() -> FloorplanEnv<GridThermalSolver> {
    let calculator = RewardCalculator::new(
        two_chiplet_system(),
        GridThermalSolver::new(ThermalConfig::with_grid(8, 8)),
        RewardConfig::default(),
    );
    FloorplanEnv::new(
        calculator,
        EnvConfig {
            grid: (8, 8),
            min_spacing_mm: 0.2,
        },
    )
}

#[test]
fn greedy_episode_completes_with_a_legal_placement() {
    let mut env = tiny_env();
    let mut observation = env.reset();
    let mut steps = 0;
    loop {
        let action = observation
            .action_mask
            .iter()
            .position(|&feasible| feasible)
            .expect("at least one feasible action");
        let result = env.step(action);
        steps += 1;
        assert!(steps <= 2, "a 2-chiplet episode must end in 2 steps");
        assert!(result.reward.is_finite());
        if result.done {
            break;
        }
        observation = result
            .observation
            .expect("ongoing episode has an observation");
    }
    assert_eq!(steps, 2);
    assert!(env.placement().is_complete());
    let breakdown = env
        .last_breakdown()
        .expect("a complete episode reports a reward breakdown");
    assert!(breakdown.wirelength_mm > 0.0);
    assert!(breakdown.max_temperature_c > 0.0);
}

#[test]
fn facade_solves_a_tiny_rl_request_end_to_end() {
    let episodes = 2usize;
    let outcome = FloorplanRequest::builder()
        .system(two_chiplet_system())
        .method(Method::Rl {
            config: RlPlannerConfig {
                episodes_per_update: 2,
                env: EnvConfig {
                    grid: (8, 8),
                    min_spacing_mm: 0.2,
                },
                ..RlPlannerConfig::default()
            },
        })
        .thermal(ThermalBackend::Grid {
            config: ThermalConfig::with_grid(8, 8),
        })
        .budget(Budget::Evaluations(episodes))
        .seed(3)
        .build()
        .expect("valid request")
        .solve()
        .expect("solve failed");
    assert!(outcome.placement.is_complete());
    assert_eq!(outcome.evaluations, episodes);
    assert_eq!(outcome.telemetry.len(), episodes);
    assert_eq!(outcome.manifest.seed, 3);
    assert!(outcome.breakdown.wirelength_mm > 0.0);
}
