//! End-to-end integration tests: benchmark systems through the whole
//! RLPlanner pipeline (characterisation → environment → PPO training →
//! reward evaluation), each run constructed through the unified
//! [`FloorplanRequest`] facade.

use rlp_benchmarks::{synthetic_case, synthetic_cases};
use rlp_thermal::{
    CharacterizationOptions, GridThermalSolver, ThermalAnalyzer, ThermalBackend, ThermalConfig,
};
use rlplanner::{AgentConfig, Budget, EnvConfig, FloorplanRequest, Method, RlPlannerConfig};

fn quick_fast_backend() -> ThermalBackend {
    ThermalBackend::Fast {
        config: ThermalConfig::with_grid(16, 16),
        characterization: CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 8.0, 14.0],
            distance_bins: 16,
            ..CharacterizationOptions::default()
        },
    }
}

fn quick_rl_method(use_rnd: bool) -> Method {
    let config = RlPlannerConfig {
        episodes_per_update: 4,
        agent: AgentConfig {
            conv_channels: (4, 8),
            feature_dim: 64,
            rnd_hidden_dim: 32,
            rnd_embedding_dim: 8,
            ..AgentConfig::default()
        },
        env: EnvConfig {
            grid: (14, 14),
            min_spacing_mm: 0.2,
        },
        ..RlPlannerConfig::default()
    };
    if use_rnd {
        Method::RlRnd { config }
    } else {
        Method::Rl { config }
    }
}

#[test]
fn rlplanner_trains_end_to_end_on_a_synthetic_case() {
    let system = synthetic_case(1);
    let outcome = FloorplanRequest::builder()
        .system(system.clone())
        .method(quick_rl_method(false))
        .thermal(quick_fast_backend())
        .budget(Budget::Evaluations(16))
        .seed(5)
        .build()
        .expect("valid request")
        .solve()
        .expect("solve failed");

    // The training loop must produce a complete, legal floorplan whose
    // reward decomposes into wirelength and temperature terms.
    assert!(outcome.placement.is_complete());
    assert!(system.validate_placement(&outcome.placement, 0.2).is_ok());
    assert!(outcome.breakdown.reward < 0.0);
    assert!(
        outcome.breakdown.reward > -100.0,
        "best episode hit the penalty"
    );
    assert!(outcome.breakdown.wirelength_mm > 0.0);
    assert!(outcome.breakdown.max_temperature_c > 45.0);
    assert_eq!(outcome.telemetry.len(), outcome.evaluations);
    assert_eq!(outcome.evaluations, 16);

    // The manifest records the fully-resolved run.
    assert_eq!(outcome.manifest.system_name, system.name());
    assert_eq!(outcome.manifest.seed, 5);
    assert_eq!(outcome.manifest.method.label(), "rl");

    // Cross-check the best placement against the slow reference solver: the
    // temperature reported by the fast model should land within a few kelvin.
    let reference = GridThermalSolver::new(ThermalConfig::with_grid(16, 16));
    let reference_temp = reference
        .max_temperature(&system, &outcome.placement)
        .unwrap();
    let error = (reference_temp - outcome.breakdown.max_temperature_c).abs();
    assert!(
        error < 5.0,
        "fast-model temperature off by {error:.2} K (fast {:.2}, reference {reference_temp:.2})",
        outcome.breakdown.max_temperature_c
    );
}

#[test]
fn rnd_variant_trains_on_a_synthetic_case() {
    let outcome = FloorplanRequest::builder()
        .system(synthetic_case(2))
        .method(quick_rl_method(true))
        .thermal(quick_fast_backend())
        .budget(Budget::Evaluations(12))
        .seed(5)
        .build()
        .expect("valid request")
        .solve()
        .expect("solve failed");
    assert!(outcome.placement.is_complete());
    assert!(outcome.breakdown.reward > -100.0);
    assert_eq!(outcome.manifest.method.label(), "rl-rnd");
}

/// Full-budget training run, closer to the paper's experimental scale.
/// Ignored by default so `cargo test -q` stays CI-friendly; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full training budget; run explicitly with -- --ignored"]
fn rlplanner_full_budget_training_improves_over_early_episodes() {
    let system = synthetic_case(1);
    let outcome = FloorplanRequest::builder()
        .system(system.clone())
        .method(Method::rl())
        .thermal(ThermalBackend::Fast {
            config: ThermalConfig::with_grid(32, 32),
            characterization: CharacterizationOptions::default(),
        })
        .budget(Budget::Evaluations(300))
        .seed(5)
        .build()
        .expect("valid request")
        .solve()
        .expect("solve failed");
    assert!(outcome.placement.is_complete());
    assert!(system.validate_placement(&outcome.placement, 0.2).is_ok());
    // Training signal: the best reward must beat the average of the first
    // training episodes by a clear margin.
    let early: f64 = outcome
        .telemetry
        .iter()
        .take(20)
        .map(|s| s.reward)
        .sum::<f64>()
        / 20.0;
    assert!(
        outcome.breakdown.reward > early,
        "no improvement over early episodes (best {}, early mean {})",
        outcome.breakdown.reward,
        early
    );
}

#[test]
fn all_synthetic_cases_are_plannable_with_the_grid_solver_reward() {
    // Use the slow solver directly in the loop (as "TAP-2.5D (HotSpot)" does)
    // for a very short training run, to make sure the pipeline is backend
    // agnostic end to end.
    for system in synthetic_cases().into_iter().take(2) {
        let outcome = FloorplanRequest::builder()
            .system(system.clone())
            .method(quick_rl_method(false))
            .thermal(ThermalBackend::Grid {
                config: ThermalConfig::with_grid(12, 12),
            })
            .budget(Budget::Evaluations(6))
            .seed(5)
            .build()
            .expect("valid request")
            .solve()
            .expect("solve failed");
        assert!(outcome.placement.is_complete(), "{}", system.name());
    }
}
