//! End-to-end integration tests: benchmark systems through the whole
//! RLPlanner pipeline (characterisation → environment → PPO training →
//! reward evaluation).

use rlp_benchmarks::{synthetic_case, synthetic_cases};
use rlp_thermal::{
    CharacterizationOptions, FastThermalModel, GridThermalSolver, ThermalAnalyzer, ThermalConfig,
};
use rlplanner::{AgentConfig, EnvConfig, RewardConfig, RlPlanner, RlPlannerConfig};

fn quick_characterization() -> CharacterizationOptions {
    CharacterizationOptions {
        footprint_samples_mm: vec![4.0, 8.0, 14.0],
        distance_bins: 16,
        ..CharacterizationOptions::default()
    }
}

fn quick_planner_config(episodes: usize, use_rnd: bool) -> RlPlannerConfig {
    RlPlannerConfig {
        episodes,
        episodes_per_update: 4,
        use_rnd,
        agent: AgentConfig {
            conv_channels: (4, 8),
            feature_dim: 64,
            rnd_hidden_dim: 32,
            rnd_embedding_dim: 8,
            ..AgentConfig::default()
        },
        env: EnvConfig {
            grid: (14, 14),
            min_spacing_mm: 0.2,
        },
        seed: 5,
        ..RlPlannerConfig::default()
    }
}

#[test]
fn rlplanner_trains_end_to_end_on_a_synthetic_case() {
    let system = synthetic_case(1);
    let thermal_config = ThermalConfig::with_grid(16, 16);
    let fast_model = FastThermalModel::characterize(
        &thermal_config,
        system.interposer_width(),
        system.interposer_height(),
        &quick_characterization(),
    )
    .unwrap();

    let mut planner = RlPlanner::new(
        system.clone(),
        fast_model,
        RewardConfig::default(),
        quick_planner_config(16, false),
    );
    let result = planner.train();

    // The training loop must produce a complete, legal floorplan whose
    // reward decomposes into wirelength and temperature terms.
    assert!(result.best_placement.is_complete());
    assert!(system
        .validate_placement(&result.best_placement, 0.2)
        .is_ok());
    assert!(result.best_breakdown.reward < 0.0);
    assert!(
        result.best_breakdown.reward > -100.0,
        "best episode hit the penalty"
    );
    assert!(result.best_breakdown.wirelength_mm > 0.0);
    assert!(result.best_breakdown.max_temperature_c > 45.0);
    assert_eq!(result.reward_history.len(), result.episodes_run);

    // Cross-check the best placement against the slow reference solver: the
    // temperature reported by the fast model should land within a few kelvin.
    let reference = GridThermalSolver::new(thermal_config);
    let reference_temp = reference
        .max_temperature(&system, &result.best_placement)
        .unwrap();
    let error = (reference_temp - result.best_breakdown.max_temperature_c).abs();
    assert!(
        error < 5.0,
        "fast-model temperature off by {error:.2} K (fast {:.2}, reference {reference_temp:.2})",
        result.best_breakdown.max_temperature_c
    );
}

#[test]
fn rnd_variant_trains_on_a_synthetic_case() {
    let system = synthetic_case(2);
    let fast_model = FastThermalModel::characterize(
        &ThermalConfig::with_grid(16, 16),
        system.interposer_width(),
        system.interposer_height(),
        &quick_characterization(),
    )
    .unwrap();
    let mut planner = RlPlanner::new(
        system,
        fast_model,
        RewardConfig::default(),
        quick_planner_config(12, true),
    );
    let result = planner.train();
    assert!(result.best_placement.is_complete());
    assert!(result.best_breakdown.reward > -100.0);
}

/// Full-budget training run, closer to the paper's experimental scale.
/// Ignored by default so `cargo test -q` stays CI-friendly; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full training budget; run explicitly with -- --ignored"]
fn rlplanner_full_budget_training_improves_over_early_episodes() {
    let system = synthetic_case(1);
    let fast_model = FastThermalModel::characterize(
        &ThermalConfig::with_grid(32, 32),
        system.interposer_width(),
        system.interposer_height(),
        &CharacterizationOptions::default(),
    )
    .unwrap();
    let mut planner = RlPlanner::new(
        system.clone(),
        fast_model,
        RewardConfig::default(),
        RlPlannerConfig {
            episodes: 300,
            seed: 5,
            ..RlPlannerConfig::default()
        },
    );
    let result = planner.train();
    assert!(result.best_placement.is_complete());
    assert!(system
        .validate_placement(&result.best_placement, 0.2)
        .is_ok());
    // Training signal: the best reward must beat the average of the first
    // training episodes by a clear margin.
    let early: f64 = result.reward_history.iter().take(20).sum::<f64>() / 20.0;
    assert!(
        result.best_breakdown.reward > early,
        "no improvement over early episodes (best {}, early mean {})",
        result.best_breakdown.reward,
        early
    );
}

#[test]
fn all_synthetic_cases_are_plannable_with_the_grid_solver_reward() {
    // Use the slow solver directly in the loop (as "TAP-2.5D (HotSpot)" does)
    // for a very short training run, to make sure the pipeline is backend
    // agnostic end to end.
    for system in synthetic_cases().into_iter().take(2) {
        let solver = GridThermalSolver::new(ThermalConfig::with_grid(12, 12));
        let mut planner = RlPlanner::new(
            system.clone(),
            solver,
            RewardConfig::default(),
            quick_planner_config(6, false),
        );
        let result = planner.train();
        assert!(result.best_placement.is_complete(), "{}", system.name());
    }
}
