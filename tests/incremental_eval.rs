//! Acceptance tests for the incremental evaluation engine.
//!
//! The refactor's non-negotiable: SA with incremental evaluation must
//! produce the *identical* result as the full-evaluation path under a
//! fixed seed — same best placement, same best objective, same number of
//! evaluations — because incremental values are bit-identical to full
//! ones. These tests assert that over the real thermal-aware reward, and
//! that the new evaluation telemetry flows through the facade.

use rlp_chiplet::{Chiplet, ChipletId, ChipletSystem, Net, Placement, PlacementGrid};
use rlp_sa::moves::{apply_move_in_place, propose_move, random_initial_placement, undo_move};
use rlp_sa::{DeltaObjective, EvalMode, Objective, SaConfig, SaPlanner};
use rlp_thermal::{CharacterizationOptions, FastThermalModel, ThermalBackend, ThermalConfig};
use rlplanner::{Budget, FloorplanRequest, Method, RewardCalculator, RewardConfig};

fn system() -> ChipletSystem {
    let mut sys = ChipletSystem::new("inc", 36.0, 36.0);
    let a = sys.add_chiplet(Chiplet::new("a", 9.0, 9.0, 30.0));
    let b = sys.add_chiplet(Chiplet::new("b", 7.0, 7.0, 15.0));
    let c = sys.add_chiplet(Chiplet::new("c", 5.0, 5.0, 5.0));
    let d = sys.add_chiplet(Chiplet::new("d", 4.0, 6.0, 8.0));
    sys.add_net(Net::new(a, b, 64));
    sys.add_net(Net::new(b, c, 16));
    sys.add_net(Net::new(c, d, 8));
    sys.add_net(Net::new(a, d, 4));
    sys
}

fn fast_model() -> FastThermalModel {
    FastThermalModel::characterize(
        &ThermalConfig::with_grid(12, 12),
        36.0,
        36.0,
        &CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 8.0, 12.0],
            distance_bins: 16,
            ..CharacterizationOptions::default()
        },
    )
    .expect("characterisation succeeds")
}

fn quick_sa(seed: u64) -> SaConfig {
    SaConfig {
        initial_temperature: 2.0,
        final_temperature: 0.02,
        cooling_rate: 0.85,
        moves_per_temperature: 30,
        grid: (14, 14),
        seed,
        ..SaConfig::default()
    }
}

/// The headline acceptance criterion: under fixed seeds the anneal finds
/// the identical best placement and best objective whether the reward is
/// evaluated incrementally or from scratch.
#[test]
fn sa_incremental_and_full_paths_are_identical_under_fixed_seeds() {
    let sys = system();
    let calc = RewardCalculator::new(sys.clone(), fast_model(), RewardConfig::default());
    for seed in [0u64, 7, 42] {
        let planner = SaPlanner::new(sys.clone(), quick_sa(seed));

        // Full path: the calculator's stateless `Objective` impl, i.e. a
        // from-scratch bump assignment + O(n²) superposition per move.
        let full = planner.run(&calc as &dyn Objective).expect("full run");

        // Incremental path: the propose/commit/reject engine.
        let mut objective = calc.delta_objective();
        let incremental = planner.run_delta(&mut objective).expect("incremental run");

        assert_eq!(
            incremental.best_placement, full.best_placement,
            "seed {seed}: best placements diverged"
        );
        assert_eq!(
            incremental.best_objective.to_bits(),
            full.best_objective.to_bits(),
            "seed {seed}: best objectives diverged"
        );
        assert_eq!(incremental.evaluations, full.evaluations);
        assert_eq!(incremental.accepted_moves, full.accepted_moves);
        assert_eq!(
            incremental.initial_objective.to_bits(),
            full.initial_objective.to_bits()
        );

        // Telemetry: the incremental run reports one full evaluation (the
        // initial state build) and the rest incremental.
        assert_eq!(incremental.eval_counts.mode(), EvalMode::Incremental);
        assert_eq!(incremental.eval_counts.full, 1);
        assert_eq!(
            incremental.eval_counts.incremental,
            incremental.evaluations - 1
        );
        assert_eq!(full.eval_counts.mode(), EvalMode::Full);
        assert_eq!(full.eval_counts.full, full.evaluations);

        // The engine's tracked best breakdown matches the annealer's best.
        let best = objective.best_breakdown().expect("initialised");
        assert_eq!(best.reward.to_bits(), incremental.best_objective.to_bits());
        assert_eq!(best.eval_mode, EvalMode::Incremental);
    }
}

/// Every proposed value of the delta objective equals a from-scratch
/// `RewardCalculator::evaluate` of the same placement, bit for bit, across
/// a long random commit/reject walk.
#[test]
fn delta_reward_objective_matches_full_evaluation_on_random_walks() {
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let sys = system();
    let calc = RewardCalculator::new(sys.clone(), fast_model(), RewardConfig::default());
    let grid = PlacementGrid::new(14, 14);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let mut placement =
        random_initial_placement(&sys, &grid, 0.2, &mut rng).expect("initial placement");

    let mut objective = calc.delta_objective();
    let initial = objective.reset(&placement);
    assert_eq!(
        initial.to_bits(),
        calc.evaluate(&placement).unwrap().reward.to_bits()
    );
    assert_eq!(objective.mode(), EvalMode::Incremental);

    let mut proposals = 0;
    let mut attempts = 0;
    while proposals < 200 && attempts < 4000 {
        attempts += 1;
        let mv = propose_move(&sys, &grid, &mut rng);
        let Some(undo) = apply_move_in_place(&sys, &grid, &mut placement, mv, 0.2) else {
            continue;
        };
        proposals += 1;
        let value = objective.propose(&placement, undo.changed());
        let full = calc.evaluate(&placement).unwrap();
        assert_eq!(
            value.to_bits(),
            full.reward.to_bits(),
            "proposal {proposals}: {value} vs {}",
            full.reward
        );
        if rng.gen::<f64>() < 0.5 {
            objective.commit();
            let committed = objective.current_breakdown().unwrap();
            assert_eq!(committed.reward.to_bits(), full.reward.to_bits());
            assert_eq!(
                committed.wirelength_mm.to_bits(),
                full.wirelength_mm.to_bits()
            );
            assert_eq!(
                committed.max_temperature_c.to_bits(),
                full.max_temperature_c.to_bits()
            );
        } else {
            objective.reject();
            undo_move(&mut placement, &undo);
        }
    }
    assert!(proposals >= 100, "only {proposals} legal proposals");
}

/// A backend without incremental support falls back to full evaluation
/// with the same fixed-seed trajectory.
#[test]
fn grid_backend_falls_back_to_full_evaluation() {
    use rlp_thermal::GridThermalSolver;

    let sys = system();
    let calc = RewardCalculator::new(
        sys.clone(),
        GridThermalSolver::new(ThermalConfig::with_grid(8, 8)),
        RewardConfig::default(),
    );
    let planner = SaPlanner::new(
        sys,
        SaConfig {
            max_evaluations: Some(15),
            ..quick_sa(3)
        },
    );
    let mut objective = calc.delta_objective();
    let delta_run = planner.run_delta(&mut objective).expect("delta run");
    assert_eq!(objective.mode(), EvalMode::Full);
    assert_eq!(delta_run.eval_counts.mode(), EvalMode::Full);
    assert_eq!(delta_run.eval_counts.full, delta_run.evaluations);

    let full_run = planner.run(&calc as &dyn Objective).expect("full run");
    assert_eq!(delta_run.best_placement, full_run.best_placement);
    assert_eq!(
        delta_run.best_objective.to_bits(),
        full_run.best_objective.to_bits()
    );
}

/// The facade surfaces evaluation telemetry per method and backend.
#[test]
fn facade_outcomes_carry_evaluation_telemetry() {
    let sys = system();

    // SA over the fast backend runs incrementally.
    let outcome = FloorplanRequest::builder()
        .system(sys.clone())
        .method(Method::sa())
        .thermal(ThermalBackend::Fast {
            config: ThermalConfig::with_grid(12, 12),
            characterization: CharacterizationOptions {
                footprint_samples_mm: vec![4.0, 8.0, 12.0],
                distance_bins: 16,
                ..CharacterizationOptions::default()
            },
        })
        .budget(Budget::Evaluations(40))
        .seed(5)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(outcome.evaluation.mode, EvalMode::Incremental);
    assert_eq!(outcome.evaluation.counts.full, 1);
    assert_eq!(outcome.evaluation.counts.total(), outcome.evaluations);
    assert_eq!(outcome.breakdown.eval_mode, EvalMode::Incremental);
    let json = rlplanner::report::outcome_json(&system(), &outcome);
    assert!(json.contains("\"mode\": \"incremental\""));

    // SA over the grid backend falls back to full evaluation.
    let outcome = FloorplanRequest::builder()
        .system(sys.clone())
        .method(Method::sa())
        .thermal(ThermalBackend::Grid {
            config: ThermalConfig::with_grid(8, 8),
        })
        .budget(Budget::Evaluations(10))
        .seed(5)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(outcome.evaluation.mode, EvalMode::Full);
    assert_eq!(outcome.evaluation.counts.full, outcome.evaluations);
    assert_eq!(outcome.evaluation.counts.incremental, 0);

    // RL evaluates one full reward per episode.
    let outcome = FloorplanRequest::builder()
        .system(sys)
        .method(Method::rl())
        .thermal(ThermalBackend::Fast {
            config: ThermalConfig::with_grid(12, 12),
            characterization: CharacterizationOptions {
                footprint_samples_mm: vec![4.0, 8.0, 12.0],
                distance_bins: 16,
                ..CharacterizationOptions::default()
            },
        })
        .budget(Budget::Evaluations(4))
        .seed(5)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(outcome.evaluation.mode, EvalMode::Full);
    assert_eq!(outcome.evaluation.counts.full, outcome.evaluations);
}

/// `delta_for_move` (the single-chiplet convenience) agrees with the
/// general propose path.
#[test]
fn incremental_wirelength_delta_for_move_is_exposed() {
    use rlp_chiplet::bumps::BumpConfig;
    use rlp_chiplet::wirelength::bump_aware_wirelength;
    use rlp_chiplet::{IncrementalWirelength, Position, Rotation};

    let sys = system();
    let ids: Vec<ChipletId> = sys.chiplet_ids().collect();
    let mut placement = Placement::for_system(&sys);
    placement.place(ids[0], Position::new(2.0, 2.0));
    placement.place(ids[1], Position::new(20.0, 2.0));
    placement.place(ids[2], Position::new(2.0, 20.0));
    placement.place(ids[3], Position::new(20.0, 20.0));

    let config = BumpConfig::default();
    let mut inc = IncrementalWirelength::new(&sys, &placement, config).unwrap();
    let before = inc.total();
    let delta = inc.delta_for_move(&sys, ids[1], Position::new(12.0, 2.0), Rotation::None);
    inc.commit();
    placement.place(ids[1], Position::new(12.0, 2.0));
    let full = bump_aware_wirelength(&sys, &placement, &config).unwrap();
    assert_eq!(inc.total().to_bits(), full.to_bits());
    assert!((delta - (full - before)).abs() < 1e-9);
}
