//! Integration tests for the unified `Planner` facade: every
//! (system, method, backend) combination the CLI accepts solves through
//! `Planner::solve` at a tiny budget and yields a complete, legal
//! placement; and an outcome's manifest reproduces the same result under
//! the same seed.

use rlp_benchmarks::{ascend910_system, cpu_dram_system, multi_gpu_system, synthetic_case};
use rlp_chiplet::ChipletSystem;
use rlp_sa::SaConfig;
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::{
    planner_for, AgentConfig, Budget, FloorplanOutcome, FloorplanRequest, GradientConfig, Method,
    PlanError, Planner, PpoPlanner, RlPlannerConfig,
};

/// Every system the CLI accepts.
fn cli_systems() -> Vec<ChipletSystem> {
    let mut systems = vec![multi_gpu_system(), cpu_dram_system(), ascend910_system()];
    systems.extend((1..=5).map(synthetic_case));
    systems
}

/// A cheap fast-model backend: coarse characterisation grid, minimal sweep.
fn tiny_fast_backend() -> ThermalBackend {
    ThermalBackend::Fast {
        config: ThermalConfig::with_grid(12, 12),
        characterization: CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 10.0],
            distance_bins: 8,
            ..CharacterizationOptions::default()
        },
    }
}

fn tiny_grid_backend() -> ThermalBackend {
    ThermalBackend::Grid {
        config: ThermalConfig::with_grid(10, 10),
    }
}

fn tiny_rl_method(use_rnd: bool) -> Method {
    let config = RlPlannerConfig {
        episodes_per_update: 2,
        agent: AgentConfig {
            conv_channels: (2, 4),
            feature_dim: 16,
            rnd_hidden_dim: 16,
            rnd_embedding_dim: 4,
            ..AgentConfig::default()
        },
        ..RlPlannerConfig::default()
    };
    if use_rnd {
        Method::RlRnd { config }
    } else {
        Method::Rl { config }
    }
}

fn solve(system: &ChipletSystem, method: Method, thermal: ThermalBackend, budget: usize) {
    let request = FloorplanRequest::builder()
        .system(system.clone())
        .method(method)
        .thermal(thermal)
        .budget(Budget::Evaluations(budget))
        .seed(5)
        .build()
        .expect("valid request");
    let outcome = planner_for(request.method())
        .solve(&request)
        .unwrap_or_else(|err| panic!("{} on {}: {err}", request.method().label(), system.name()));
    assert_outcome_is_complete(system, &request, &outcome, budget);
}

fn assert_outcome_is_complete(
    system: &ChipletSystem,
    request: &FloorplanRequest,
    outcome: &FloorplanOutcome,
    budget: usize,
) {
    let context = format!("{} on {}", request.method().label(), system.name());
    assert!(outcome.placement.is_complete(), "{context}: incomplete");
    assert!(
        system.validate_placement(&outcome.placement, 0.2).is_ok(),
        "{context}: illegal placement"
    );
    assert!(
        outcome.breakdown.reward.is_finite(),
        "{context}: non-finite reward"
    );
    assert_eq!(
        outcome.evaluations, budget,
        "{context}: budget not honoured"
    );
    assert_eq!(
        outcome.telemetry.len(),
        outcome.evaluations,
        "{context}: telemetry gaps"
    );
    // Telemetry indices are dense and best-so-far is monotone.
    for (i, sample) in outcome.telemetry.iter().enumerate() {
        assert_eq!(sample.index, i, "{context}: sparse telemetry");
    }
    assert!(
        outcome
            .telemetry
            .windows(2)
            .all(|w| w[1].best_reward >= w[0].best_reward),
        "{context}: best-so-far not monotone"
    );
    // The manifest identifies the run.
    assert_eq!(outcome.manifest.system_name, system.name());
    assert_eq!(outcome.manifest.chiplet_count, system.chiplet_count());
    assert_eq!(outcome.manifest.seed, 5);
    assert_eq!(
        outcome.manifest.method.label(),
        request.method().label(),
        "{context}: method not preserved in manifest"
    );
}

#[test]
fn rl_solves_every_cli_system() {
    for system in cli_systems() {
        solve(&system, tiny_rl_method(false), tiny_fast_backend(), 2);
    }
}

#[test]
fn rl_rnd_solves_every_cli_system() {
    for system in cli_systems() {
        solve(&system, tiny_rl_method(true), tiny_fast_backend(), 2);
    }
}

#[test]
fn sa_fast_solves_every_cli_system() {
    for system in cli_systems() {
        solve(&system, Method::sa(), tiny_fast_backend(), 12);
    }
}

#[test]
fn sa_hotspot_solves_every_cli_system() {
    for system in cli_systems() {
        solve(&system, Method::sa(), tiny_grid_backend(), 12);
    }
}

#[test]
fn rl_manifest_reproduces_the_same_result_under_the_same_seed() {
    let system = synthetic_case(1);
    let request = FloorplanRequest::builder()
        .system(system.clone())
        .method(tiny_rl_method(false))
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(4))
        .seed(11)
        .build()
        .unwrap();
    let first = request.solve().unwrap();

    // Rebuild the request from nothing but the manifest and the system.
    let replay = FloorplanRequest::from_manifest(system, &first.manifest)
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(replay.placement, first.placement);
    assert_eq!(replay.breakdown.reward, first.breakdown.reward);
    assert_eq!(replay.telemetry, first.telemetry);
    assert_eq!(replay.manifest, first.manifest);
}

#[test]
fn parallel_envs_produce_the_identical_outcome_through_the_facade() {
    let system = synthetic_case(1);
    let solve_with = |parallel_envs: usize| {
        FloorplanRequest::builder()
            .system(system.clone())
            .method(tiny_rl_method(false))
            .thermal(tiny_fast_backend())
            .budget(Budget::Evaluations(4))
            .seed(17)
            .parallel_envs(parallel_envs)
            .build()
            .unwrap()
            .solve()
            .unwrap()
    };
    let serial = solve_with(1);
    let parallel = solve_with(3);
    assert_eq!(serial.placement, parallel.placement);
    assert_eq!(serial.breakdown, parallel.breakdown);
    assert_eq!(serial.telemetry, parallel.telemetry);

    // Both outcomes carry rollout telemetry; only the knob itself (and
    // wall-clock-derived throughput) may differ.
    let serial_training = serial.training.expect("RL outcomes report training");
    let parallel_training = parallel.training.expect("RL outcomes report training");
    assert_eq!(serial_training.parallel_envs, 1);
    assert_eq!(parallel_training.parallel_envs, 3);
    assert!(serial_training.episodes_per_s > 0.0);
    // The manifest records the knob, so a manifest replay reuses it.
    let replayed = FloorplanRequest::from_manifest(system, &parallel.manifest).unwrap();
    let Method::Rl { config } = replayed.resolved_method() else {
        panic!("method variant must be preserved");
    };
    assert_eq!(config.parallel_envs, 3);
}

#[test]
fn sa_outcomes_have_no_training_telemetry() {
    let request = FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::sa())
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(10))
        .build()
        .unwrap();
    assert!(request.solve().unwrap().training.is_none());
}

#[test]
fn sa_manifest_reproduces_the_same_result_under_the_same_seed() {
    let system = synthetic_case(2);
    let request = FloorplanRequest::builder()
        .system(system.clone())
        .method(Method::Sa {
            config: SaConfig {
                grid: (14, 14),
                ..SaConfig::default()
            },
        })
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(40))
        .seed(23)
        .build()
        .unwrap();
    let first = request.solve().unwrap();

    let replay = FloorplanRequest::from_manifest(system, &first.manifest)
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(replay.placement, first.placement);
    assert_eq!(replay.breakdown.reward, first.breakdown.reward);
    assert_eq!(replay.evaluations, first.evaluations);
}

#[test]
fn from_manifest_rejects_a_mismatched_system() {
    let request = FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::sa())
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(10))
        .build()
        .unwrap();
    let outcome = request.solve().unwrap();
    let err = FloorplanRequest::from_manifest(synthetic_case(2), &outcome.manifest).unwrap_err();
    assert_eq!(err.field(), "system");
}

#[test]
fn gradient_solves_every_cli_system() {
    for system in cli_systems() {
        let request = FloorplanRequest::builder()
            .system(system.clone())
            .method(Method::Gradient {
                config: GradientConfig {
                    iterations: 40,
                    ..GradientConfig::default()
                },
            })
            .thermal(tiny_fast_backend())
            .seed(5)
            .build()
            .expect("valid request");
        let outcome = request
            .solve()
            .unwrap_or_else(|err| panic!("gradient on {}: {err}", system.name()));
        let context = format!("gradient on {}", system.name());
        assert!(outcome.placement.is_complete(), "{context}: incomplete");
        assert!(
            system.validate_placement(&outcome.placement, 0.2).is_ok(),
            "{context}: illegal placement"
        );
        assert!(outcome.breakdown.reward.is_finite(), "{context}: reward");
        // Descent may converge early, so the evaluation count is bounded by
        // the iteration count rather than pinned to it.
        assert!(
            outcome.evaluations > 0 && outcome.evaluations <= 40,
            "{context}: {} evaluations",
            outcome.evaluations
        );
        assert_eq!(outcome.telemetry.len(), outcome.evaluations);
        assert!(outcome.training.is_none(), "{context}: spurious training");
        assert_eq!(outcome.manifest.method.label(), "gradient");
    }
}

#[test]
fn gradient_manifest_reproduces_the_same_result_under_the_same_seed() {
    let system = synthetic_case(2);
    let request = FloorplanRequest::builder()
        .system(system.clone())
        .method(Method::gradient())
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(30))
        .seed(13)
        .build()
        .unwrap();
    let first = request.solve().unwrap();
    // Same request, same seed: bit-identical outcome.
    let second = request.solve().unwrap();
    assert_eq!(second.placement, first.placement);
    assert_eq!(second.breakdown, first.breakdown);
    assert_eq!(second.telemetry, first.telemetry);

    // Rebuild the request from nothing but the manifest and the system.
    let replay = FloorplanRequest::from_manifest(system, &first.manifest)
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(replay.placement, first.placement);
    assert_eq!(replay.breakdown.reward, first.breakdown.reward);
    assert_eq!(replay.telemetry, first.telemetry);
    assert_eq!(replay.manifest, first.manifest);
}

#[test]
fn gradient_matches_sa_quality_with_far_fewer_evaluations() {
    // The perf claim behind the engine: descent reaches SA-comparable
    // reward (within 5%) while evaluating at least 10x fewer candidates.
    let system = synthetic_case(1);
    let thermal = tiny_fast_backend();
    let sa = FloorplanRequest::builder()
        .system(system.clone())
        .method(Method::sa())
        .thermal(thermal.clone())
        .budget(Budget::Evaluations(600))
        .seed(7)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    let gradient = FloorplanRequest::builder()
        .system(system)
        .method(Method::gradient())
        .thermal(thermal)
        .budget(Budget::Evaluations(60))
        .seed(7)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    assert!(
        gradient.evaluations * 10 <= sa.evaluations,
        "gradient used {} evaluations vs SA's {}",
        gradient.evaluations,
        sa.evaluations
    );
    let tolerance = 0.05 * sa.breakdown.reward.abs();
    assert!(
        gradient.breakdown.reward >= sa.breakdown.reward - tolerance,
        "gradient reward {} not within 5% of SA's {}",
        gradient.breakdown.reward,
        sa.breakdown.reward
    );
}

#[test]
fn warm_started_sa_is_no_worse_than_cold_sa_at_equal_budget() {
    let system = synthetic_case(1);
    let solve_with = |warm_start: bool| {
        FloorplanRequest::builder()
            .system(system.clone())
            .method(Method::sa())
            .thermal(tiny_fast_backend())
            .budget(Budget::Evaluations(40))
            .seed(19)
            .warm_start(warm_start)
            .build()
            .unwrap()
            .solve()
            .unwrap()
    };
    let cold = solve_with(false);
    let warm = solve_with(true);
    assert_eq!(cold.evaluations, warm.evaluations, "budgets must match");
    assert!(
        warm.breakdown.reward >= cold.breakdown.reward,
        "warm start regressed SA: {} < {}",
        warm.breakdown.reward,
        cold.breakdown.reward
    );
    // The flag is recorded for replay and changes the trajectory's start.
    assert!(warm.manifest.warm_start);
    assert!(!cold.manifest.warm_start);
    let replay = FloorplanRequest::from_manifest(system, &warm.manifest)
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(replay.placement, warm.placement);
    assert_eq!(replay.breakdown.reward, warm.breakdown.reward);
}

#[test]
fn warm_started_rl_is_never_worse_than_the_presolve() {
    // RL's warm start seeds the best-artifact tracker, so even a tiny
    // training budget returns at least the presolve's quality.
    let system = synthetic_case(1);
    let presolve = FloorplanRequest::builder()
        .system(system.clone())
        .method(Method::Gradient {
            config: GradientConfig {
                iterations: 50,
                ..GradientConfig::default()
            },
        })
        .thermal(tiny_fast_backend())
        .seed(3)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    let warm_rl = FloorplanRequest::builder()
        .system(system)
        .method(tiny_rl_method(false))
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(2))
        .seed(3)
        .warm_start(true)
        .build()
        .unwrap()
        .solve()
        .unwrap();
    assert!(
        warm_rl.breakdown.reward >= presolve.breakdown.reward,
        "warm RL {} fell below its presolve {}",
        warm_rl.breakdown.reward,
        presolve.breakdown.reward
    );
    assert!(warm_rl.manifest.warm_start);
}

#[test]
fn planners_reject_methods_they_do_not_implement() {
    let request = FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::sa())
        .thermal(tiny_fast_backend())
        .build()
        .unwrap();
    let err = PpoPlanner.solve(&request).unwrap_err();
    assert!(matches!(err, PlanError::UnsupportedMethod { .. }));
}
