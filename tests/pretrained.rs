//! Integration tests for the train-once/serve-forever flow: an RL solve
//! saves its policy as a `rlplanner.policy/v1` file, and a
//! `Method::Pretrained` request replays it as a single inference-only
//! greedy rollout — no optimiser, no training telemetry, bit-identical
//! across repeats. Hostile policy files (truncated, corrupted, foreign,
//! shape-mismatched) surface as typed `PlanError::Policy` values, never
//! panics.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rlp_benchmarks::{multi_gpu_system, synthetic_case};
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::{
    AgentConfig, Budget, FloorplanRequest, Method, PlanError, PolicyError, PolicyFile,
    PreloadedPolicy, PretrainedConfig, RlPlannerConfig,
};

fn tiny_fast_backend() -> ThermalBackend {
    ThermalBackend::Fast {
        config: ThermalConfig::with_grid(12, 12),
        characterization: CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 10.0],
            distance_bins: 8,
            ..CharacterizationOptions::default()
        },
    }
}

fn tiny_rl_method() -> Method {
    Method::Rl {
        config: RlPlannerConfig {
            episodes_per_update: 2,
            agent: AgentConfig {
                conv_channels: (2, 4),
                feature_dim: 16,
                rnd_hidden_dim: 16,
                rnd_embedding_dim: 4,
                ..AgentConfig::default()
            },
            ..RlPlannerConfig::default()
        },
    }
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rlp-pretrained-{}-{name}.policy",
        std::process::id()
    ))
}

/// Trains a tiny RL run on `synthetic_case(1)` and saves its policy.
fn train_and_save(path: &Path) {
    let outcome = FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(tiny_rl_method())
        .thermal(tiny_fast_backend())
        .budget(Budget::Evaluations(2))
        .seed(5)
        .save_policy(path.display().to_string())
        .build()
        .unwrap()
        .solve()
        .unwrap();
    assert!(outcome.training.is_some(), "the training run still trains");
    assert!(path.exists(), "save_policy writes the file");
}

fn pretrained_request(system: rlp_chiplet::ChipletSystem, path: &Path) -> FloorplanRequest {
    FloorplanRequest::builder()
        .system(system)
        .method(Method::pretrained(path.display().to_string()))
        .thermal(tiny_fast_backend())
        .build()
        .unwrap()
}

#[test]
fn saved_policy_solves_inference_only_and_deterministically() {
    let path = scratch_path("roundtrip");
    train_and_save(&path);

    let request = pretrained_request(synthetic_case(1), &path);
    let first = request.solve().expect("pretrained solve");

    // Inference only: exactly one greedy rollout, no training telemetry.
    assert!(first.training.is_none(), "pretrained must not train");
    assert_eq!(first.evaluations, 1);
    assert_eq!(first.telemetry.len(), 1);
    assert!(first.placement.is_complete());
    assert!(first.breakdown.reward.is_finite());
    assert_eq!(first.manifest.method.label(), "pretrained");

    // The manifest records the checksum that actually ran.
    let Method::Pretrained { config } = &first.manifest.method else {
        panic!("manifest must carry the pretrained method");
    };
    let file = PolicyFile::load(&path).unwrap();
    assert_eq!(config.checksum, Some(file.checksum()));

    // Greedy argmax draws no randomness: repeats are bit-identical.
    let second = request.solve().unwrap();
    assert_eq!(second.placement, first.placement);
    assert_eq!(second.breakdown, first.breakdown);
    assert_eq!(second.telemetry, first.telemetry);

    // A manifest replay (checksum now pinned) reproduces the run too.
    let replay = FloorplanRequest::from_manifest(synthetic_case(1), &first.manifest)
        .unwrap()
        .solve()
        .unwrap();
    assert_eq!(replay.placement, first.placement);
    assert_eq!(replay.breakdown, first.breakdown);

    std::fs::remove_file(&path).ok();
}

#[test]
fn one_policy_generalises_to_a_different_system() {
    // The policy is tied to the placement grid, not the system: a network
    // trained on a synthetic case places a held-out standard benchmark.
    let path = scratch_path("generalise");
    train_and_save(&path);

    let outcome = pretrained_request(multi_gpu_system(), &path)
        .solve()
        .expect("pretrained solve on a held-out system");
    assert!(outcome.placement.is_complete());
    assert!(outcome.training.is_none());
    assert_eq!(outcome.manifest.system_name, "multi-gpu");

    std::fs::remove_file(&path).ok();
}

#[test]
fn checksum_pins_are_enforced() {
    let path = scratch_path("pin");
    train_and_save(&path);
    let good = PolicyFile::load(&path).unwrap().checksum();

    let solve_pinned = |checksum: u64| {
        FloorplanRequest::builder()
            .system(synthetic_case(1))
            .method(Method::Pretrained {
                config: PretrainedConfig {
                    policy_path: path.display().to_string(),
                    checksum: Some(checksum),
                    seed: 0,
                },
            })
            .thermal(tiny_fast_backend())
            .build()
            .unwrap()
            .solve()
    };

    // The correct pin solves; a wrong pin is a typed checksum error.
    assert!(solve_pinned(good).is_ok());
    let err = solve_pinned(good ^ 1).unwrap_err();
    assert!(
        matches!(
            err,
            PlanError::Policy {
                error: PolicyError::ChecksumMismatch { .. },
                ..
            }
        ),
        "{err}"
    );
    // The error names the file so daemon logs are actionable.
    assert!(err.to_string().contains("pin.policy"), "{err}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn hostile_policy_files_are_typed_errors_not_panics() {
    let path = scratch_path("hostile");
    train_and_save(&path);
    let bytes = std::fs::read(&path).unwrap();

    let solve_file = |name: &str, contents: &[u8]| {
        let bad = scratch_path(name);
        std::fs::write(&bad, contents).unwrap();
        let result = pretrained_request(synthetic_case(1), &bad).solve();
        std::fs::remove_file(&bad).ok();
        result.unwrap_err()
    };

    // A missing file is an I/O error naming the path.
    let missing = scratch_path("does-not-exist");
    let err = pretrained_request(synthetic_case(1), &missing)
        .solve()
        .unwrap_err();
    assert!(
        matches!(
            &err,
            PlanError::Policy {
                error: PolicyError::Io(_),
                ..
            }
        ),
        "{err}"
    );

    // A truncated file is `Truncated`, a flipped payload byte is
    // `ChecksumMismatch`, and a foreign file is `BadMagic`.
    let err = solve_file("truncated", &bytes[..bytes.len() / 2]);
    assert!(
        matches!(
            &err,
            PlanError::Policy {
                error: PolicyError::Truncated,
                ..
            }
        ),
        "{err}"
    );

    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let err = solve_file("flipped", &flipped);
    assert!(
        matches!(
            &err,
            PlanError::Policy {
                error: PolicyError::ChecksumMismatch { .. },
                ..
            }
        ),
        "{err}"
    );

    let err = solve_file("magic", b"PNG\x89 definitely not a policy file");
    assert!(
        matches!(
            &err,
            PlanError::Policy {
                error: PolicyError::BadMagic,
                ..
            }
        ),
        "{err}"
    );

    // A structurally valid file whose tensors do not match the network the
    // metadata describes is a shape error, not a panic.
    let mut file = PolicyFile::load(&path).unwrap();
    file.tensors.pop();
    let bad = scratch_path("shapes");
    file.save(&bad).unwrap();
    let err = pretrained_request(synthetic_case(1), &bad)
        .solve()
        .unwrap_err();
    std::fs::remove_file(&bad).ok();
    assert!(
        matches!(
            &err,
            PlanError::Policy {
                error: PolicyError::TensorCountMismatch { .. },
                ..
            }
        ),
        "{err}"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn preloaded_policy_skips_the_disk_read() {
    let path = scratch_path("preload");
    train_and_save(&path);

    let from_disk = pretrained_request(synthetic_case(1), &path)
        .solve()
        .unwrap();

    // Parse once, delete the file, and solve from the preloaded handle —
    // the daemon's load-at-startup path.
    let file = Arc::new(PolicyFile::load(&path).unwrap());
    std::fs::remove_file(&path).unwrap();
    let preloaded = FloorplanRequest::builder()
        .system(synthetic_case(1))
        .method(Method::pretrained(path.display().to_string()))
        .thermal(tiny_fast_backend())
        .preloaded_policy(PreloadedPolicy::new(path.display().to_string(), file))
        .build()
        .unwrap()
        .solve()
        .expect("preloaded solve needs no disk");

    assert_eq!(preloaded.placement, from_disk.placement);
    assert_eq!(preloaded.breakdown, from_disk.breakdown);
}
