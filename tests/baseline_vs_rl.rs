//! Integration tests comparing the SA baseline and RLPlanner on the same
//! reward — the structure of the paper's Table I / Table III experiments at
//! a miniature budget.

use rlp_benchmarks::synthetic_case;
use rlp_sa::SaConfig;
use rlp_thermal::{CharacterizationOptions, FastThermalModel, ThermalConfig};
use rlplanner::{AgentConfig, EnvConfig, RewardConfig, RlPlanner, RlPlannerConfig, Tap25dBaseline};

fn fast_model_for(system: &rlp_chiplet::ChipletSystem) -> FastThermalModel {
    FastThermalModel::characterize(
        &ThermalConfig::with_grid(16, 16),
        system.interposer_width(),
        system.interposer_height(),
        &CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 8.0, 14.0],
            distance_bins: 16,
            ..CharacterizationOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn both_optimisers_beat_a_single_random_placement() {
    let system = synthetic_case(1);
    let fast_model = fast_model_for(&system);
    let reward_config = RewardConfig::default();

    // SA baseline with a modest budget.
    let baseline = Tap25dBaseline::new(
        system.clone(),
        fast_model.clone(),
        reward_config.clone(),
        SaConfig {
            max_evaluations: Some(150),
            grid: (14, 14),
            seed: 1,
            ..SaConfig::default()
        },
    );
    let sa_result = baseline.run().unwrap();

    // A single random placement (the SA run's own starting point is random,
    // so compare against a fresh one evaluated through the same reward).
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let random_placement = rlp_sa::moves::random_initial_placement(
        &system,
        &rlp_chiplet::PlacementGrid::new(14, 14),
        0.2,
        &mut rng,
    );
    let random_reward = match random_placement {
        Ok(p) => baseline.reward_calculator().reward_or_penalty(&p),
        Err(_) => f64::NEG_INFINITY,
    };

    assert!(
        sa_result.best_breakdown.reward >= random_reward,
        "SA ({}) did not beat a random placement ({})",
        sa_result.best_breakdown.reward,
        random_reward
    );

    // RLPlanner with a tiny budget must also avoid the infeasible penalty
    // and land in the same reward ballpark as SA.
    let mut planner = RlPlanner::new(
        system.clone(),
        fast_model,
        reward_config,
        RlPlannerConfig {
            episodes: 16,
            episodes_per_update: 4,
            use_rnd: false,
            env: EnvConfig {
                grid: (14, 14),
                min_spacing_mm: 0.2,
            },
            agent: AgentConfig {
                conv_channels: (4, 8),
                feature_dim: 64,
                ..AgentConfig::default()
            },
            seed: 2,
            ..RlPlannerConfig::default()
        },
    );
    let rl_result = planner.train();
    assert!(rl_result.best_breakdown.reward > -100.0);
    // At these miniature budgets neither method dominates reliably, but both
    // must produce rewards of the same order of magnitude.
    let ratio = rl_result.best_breakdown.reward / sa_result.best_breakdown.reward;
    assert!(
        (0.2..5.0).contains(&ratio),
        "RL ({}) and SA ({}) rewards diverge unreasonably",
        rl_result.best_breakdown.reward,
        sa_result.best_breakdown.reward
    );
}

/// Full-budget SA vs RL comparison at a scale closer to the paper's tables.
/// Ignored by default so `cargo test -q` stays CI-friendly; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full optimisation budgets; run explicitly with -- --ignored"]
fn full_budget_sa_and_rl_reach_comparable_quality() {
    let system = synthetic_case(2);
    let fast_model = fast_model_for(&system);
    let reward_config = RewardConfig::default();

    let baseline = Tap25dBaseline::new(
        system.clone(),
        fast_model.clone(),
        reward_config.clone(),
        SaConfig {
            max_evaluations: Some(5_000),
            seed: 7,
            ..SaConfig::default()
        },
    );
    let sa_result = baseline.run().unwrap();

    let mut planner = RlPlanner::new(
        system,
        fast_model,
        reward_config,
        RlPlannerConfig {
            episodes: 200,
            seed: 7,
            ..RlPlannerConfig::default()
        },
    );
    let rl_result = planner.train();

    assert!(sa_result.best_breakdown.reward > -100.0);
    assert!(rl_result.best_breakdown.reward > -100.0);
    let ratio = rl_result.best_breakdown.reward / sa_result.best_breakdown.reward;
    assert!(
        (0.5..2.0).contains(&ratio),
        "RL ({}) and SA ({}) diverge at full budget",
        rl_result.best_breakdown.reward,
        sa_result.best_breakdown.reward
    );
}

#[test]
fn sa_with_fast_model_explores_more_than_sa_with_hotspot_per_unit_time() {
    use rlp_thermal::GridThermalSolver;
    use std::time::Duration;

    let system = synthetic_case(3);
    let fast_model = fast_model_for(&system);
    let reward_config = RewardConfig::default();
    let budget = Duration::from_millis(400);

    let fast_baseline = Tap25dBaseline::new(
        system.clone(),
        fast_model,
        reward_config.clone(),
        SaConfig {
            time_budget: Some(budget),
            final_temperature: 1e-6,
            grid: (14, 14),
            seed: 4,
            ..SaConfig::default()
        },
    );
    let hotspot_baseline = Tap25dBaseline::new(
        system.clone(),
        GridThermalSolver::new(ThermalConfig::with_grid(24, 24)),
        reward_config,
        SaConfig {
            time_budget: Some(budget),
            final_temperature: 1e-6,
            grid: (14, 14),
            seed: 4,
            ..SaConfig::default()
        },
    );

    let fast_result = fast_baseline.run().unwrap();
    let hotspot_result = hotspot_baseline.run().unwrap();
    // The fast thermal model's whole point: many more candidate floorplans
    // explored in the same wall-clock budget (paper: >120x per evaluation).
    assert!(
        fast_result.evaluations > hotspot_result.evaluations * 5,
        "fast model explored {} placements vs {} with the grid solver",
        fast_result.evaluations,
        hotspot_result.evaluations
    );
}
