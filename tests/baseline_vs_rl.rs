//! Integration tests comparing the SA baseline and RLPlanner on the same
//! reward — the structure of the paper's Table I / Table III experiments at
//! a miniature budget, with every run constructed through the unified
//! [`FloorplanRequest`] facade.

use rlp_benchmarks::synthetic_case;
use rlp_sa::SaConfig;
use rlp_thermal::{CharacterizationOptions, ThermalBackend, ThermalConfig};
use rlplanner::{
    AgentConfig, Budget, EnvConfig, FloorplanRequest, Method, RewardCalculator, RewardConfig,
    RlPlannerConfig,
};

fn quick_fast_backend() -> ThermalBackend {
    ThermalBackend::Fast {
        config: ThermalConfig::with_grid(16, 16),
        characterization: CharacterizationOptions {
            footprint_samples_mm: vec![4.0, 8.0, 14.0],
            distance_bins: 16,
            ..CharacterizationOptions::default()
        },
    }
}

fn quick_sa_method() -> Method {
    Method::Sa {
        config: SaConfig {
            grid: (14, 14),
            ..SaConfig::default()
        },
    }
}

#[test]
fn both_optimisers_beat_a_single_random_placement() {
    let system = synthetic_case(1);
    let reward_config = RewardConfig::default();

    // SA baseline with a modest budget.
    let sa_outcome = FloorplanRequest::builder()
        .system(system.clone())
        .method(quick_sa_method())
        .thermal(quick_fast_backend())
        .budget(Budget::Evaluations(150))
        .seed(1)
        .build()
        .expect("valid request")
        .solve()
        .expect("SA solve failed");

    // A single random placement (the SA run's own starting point is random,
    // so compare against a fresh one evaluated through the same reward).
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    let calculator = RewardCalculator::new(
        system.clone(),
        quick_fast_backend()
            .build_for(&system)
            .expect("characterisation failed"),
        reward_config,
    );
    let random_placement = rlp_sa::moves::random_initial_placement(
        &system,
        &rlp_chiplet::PlacementGrid::new(14, 14),
        0.2,
        &mut rng,
    );
    let random_reward = match random_placement {
        Ok(p) => calculator.reward_or_penalty(&p),
        Err(_) => f64::NEG_INFINITY,
    };

    assert!(
        sa_outcome.breakdown.reward >= random_reward,
        "SA ({}) did not beat a random placement ({})",
        sa_outcome.breakdown.reward,
        random_reward
    );

    // RLPlanner with a tiny budget must also avoid the infeasible penalty
    // and land in the same reward ballpark as SA.
    let rl_outcome = FloorplanRequest::builder()
        .system(system)
        .method(Method::Rl {
            config: RlPlannerConfig {
                episodes_per_update: 4,
                env: EnvConfig {
                    grid: (14, 14),
                    min_spacing_mm: 0.2,
                },
                agent: AgentConfig {
                    conv_channels: (4, 8),
                    feature_dim: 64,
                    ..AgentConfig::default()
                },
                ..RlPlannerConfig::default()
            },
        })
        .thermal(quick_fast_backend())
        .budget(Budget::Evaluations(16))
        .seed(2)
        .build()
        .expect("valid request")
        .solve()
        .expect("RL solve failed");
    assert!(rl_outcome.breakdown.reward > -100.0);
    // At these miniature budgets neither method dominates reliably, but both
    // must produce rewards of the same order of magnitude.
    let ratio = rl_outcome.breakdown.reward / sa_outcome.breakdown.reward;
    assert!(
        (0.2..5.0).contains(&ratio),
        "RL ({}) and SA ({}) rewards diverge unreasonably",
        rl_outcome.breakdown.reward,
        sa_outcome.breakdown.reward
    );
}

/// Full-budget SA vs RL comparison at a scale closer to the paper's tables.
/// Ignored by default so `cargo test -q` stays CI-friendly; run with
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full optimisation budgets; run explicitly with -- --ignored"]
fn full_budget_sa_and_rl_reach_comparable_quality() {
    let system = synthetic_case(2);

    let sa_outcome = FloorplanRequest::builder()
        .system(system.clone())
        .method(Method::sa())
        .thermal(quick_fast_backend())
        .budget(Budget::Evaluations(5_000))
        .seed(7)
        .build()
        .expect("valid request")
        .solve()
        .expect("SA solve failed");

    let rl_outcome = FloorplanRequest::builder()
        .system(system)
        .method(Method::rl())
        .thermal(quick_fast_backend())
        .budget(Budget::Evaluations(200))
        .seed(7)
        .build()
        .expect("valid request")
        .solve()
        .expect("RL solve failed");

    assert!(sa_outcome.breakdown.reward > -100.0);
    assert!(rl_outcome.breakdown.reward > -100.0);
    let ratio = rl_outcome.breakdown.reward / sa_outcome.breakdown.reward;
    assert!(
        (0.5..2.0).contains(&ratio),
        "RL ({}) and SA ({}) diverge at full budget",
        rl_outcome.breakdown.reward,
        sa_outcome.breakdown.reward
    );
}

#[test]
fn sa_with_fast_model_explores_more_than_sa_with_hotspot_per_unit_time() {
    use std::time::Duration;

    let system = synthetic_case(3);
    let budget = Duration::from_millis(400);
    let sa_method = Method::Sa {
        config: SaConfig {
            final_temperature: 1e-6,
            grid: (14, 14),
            ..SaConfig::default()
        },
    };

    let fast_outcome = FloorplanRequest::builder()
        .system(system.clone())
        .method(sa_method.clone())
        .thermal(quick_fast_backend())
        .budget(Budget::TimeLimit(budget))
        .seed(4)
        .build()
        .expect("valid request")
        .solve()
        .expect("SA (fast) solve failed");

    let hotspot_outcome = FloorplanRequest::builder()
        .system(system)
        .method(sa_method)
        .thermal(ThermalBackend::Grid {
            config: ThermalConfig::with_grid(24, 24),
        })
        .budget(Budget::TimeLimit(budget))
        .seed(4)
        .build()
        .expect("valid request")
        .solve()
        .expect("SA (HotSpot) solve failed");

    // The fast thermal model's whole point: many more candidate floorplans
    // explored in the same wall-clock budget (paper: >120x per evaluation).
    assert!(
        fast_outcome.evaluations > hotspot_outcome.evaluations * 5,
        "fast model explored {} placements vs {} with the grid solver",
        fast_outcome.evaluations,
        hotspot_outcome.evaluations
    );
}
