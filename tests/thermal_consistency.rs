//! Integration tests for the fast thermal model against the grid solver —
//! the relationship the paper's Table II quantifies.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlp_benchmarks::{standard_benchmarks, SyntheticConfig, SyntheticSystemGenerator};
use rlp_chiplet::PlacementGrid;
use rlp_sa::moves::random_initial_placement;
use rlp_thermal::{
    CharacterizationOptions, ErrorMetrics, FastThermalModel, GridThermalSolver, ThermalAnalyzer,
    ThermalConfig,
};

fn thermal_config() -> ThermalConfig {
    ThermalConfig::with_grid(16, 16)
}

fn characterization() -> CharacterizationOptions {
    CharacterizationOptions {
        footprint_samples_mm: vec![4.0, 8.0, 14.0, 20.0],
        distance_bins: 20,
        ..CharacterizationOptions::default()
    }
}

#[test]
fn fast_model_tracks_grid_solver_on_synthetic_dataset() {
    // A miniature version of the paper's Table II experiment: a batch of
    // synthetic systems, one random legal placement each, MAE/MAPE between
    // the two analyzers. The paper reports MAE ±0.25 K against HotSpot on
    // its own calibrated tables; we accept a couple of kelvin against our
    // independent grid solver, which is the same order of agreement relative
    // to the ~20-60 K temperature rises involved.
    let config = thermal_config();
    let grid_solver = GridThermalSolver::new(config.clone());
    let placement_grid = PlacementGrid::new(16, 16);
    let mut generator = SyntheticSystemGenerator::new(SyntheticConfig::default(), 7);
    let mut rng = ChaCha8Rng::seed_from_u64(11);

    let mut fast_temps = Vec::new();
    let mut reference_temps = Vec::new();
    let mut evaluated = 0;
    while evaluated < 12 {
        let system = generator.generate();
        let Ok(placement) = random_initial_placement(&system, &placement_grid, 0.2, &mut rng)
        else {
            continue;
        };
        let fast = FastThermalModel::characterize(
            &config,
            system.interposer_width(),
            system.interposer_height(),
            &characterization(),
        )
        .unwrap();
        fast_temps.push(fast.max_temperature(&system, &placement).unwrap());
        reference_temps.push(grid_solver.max_temperature(&system, &placement).unwrap());
        evaluated += 1;
    }

    let metrics = ErrorMetrics::compute(&fast_temps, &reference_temps);
    assert!(metrics.mae < 3.0, "fast model MAE too large: {metrics}");
    assert!(metrics.mape < 0.05, "fast model MAPE too large: {metrics}");
}

#[test]
fn fast_model_ranks_benchmark_placements_like_the_grid_solver() {
    // The optimiser only needs the fast model to *order* floorplans
    // correctly. Compare the ranking of several random placements of each
    // benchmark system under both analyzers.
    let config = thermal_config();
    let grid_solver = GridThermalSolver::new(config.clone());
    let placement_grid = PlacementGrid::new(16, 16);
    for system in standard_benchmarks() {
        let fast = FastThermalModel::characterize(
            &config,
            system.interposer_width(),
            system.interposer_height(),
            &characterization(),
        )
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let placements: Vec<_> = (0..4)
            .filter_map(|_| random_initial_placement(&system, &placement_grid, 0.2, &mut rng).ok())
            .collect();
        assert!(
            placements.len() >= 2,
            "{}: not enough placements",
            system.name()
        );
        let fast_temps: Vec<f64> = placements
            .iter()
            .map(|p| fast.max_temperature(&system, p).unwrap())
            .collect();
        let reference: Vec<f64> = placements
            .iter()
            .map(|p| grid_solver.max_temperature(&system, p).unwrap())
            .collect();
        // When the reference solver separates the placements by a meaningful
        // margin, the fast model must agree on which one is hottest (rank
        // agreement at the top is what the max-temperature objective needs).
        // Placements the reference considers thermally equivalent (spread
        // below 2 K) carry no ranking signal and are skipped.
        let ref_max = reference.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ref_min = reference.iter().cloned().fold(f64::INFINITY, f64::min);
        if ref_max - ref_min < 2.0 {
            continue;
        }
        let fast_max = fast_temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ref_argmax = reference
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            (fast_temps[ref_argmax] - fast_max).abs() < 2.0,
            "{}: ranking disagreement (fast {:?}, reference {:?})",
            system.name(),
            fast_temps,
            reference
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random synthetic systems, the fast model's temperature rise is
    /// positive, finite and monotone in a global power scale factor.
    #[test]
    fn fast_model_rise_scales_with_power(seed in 0u64..1000) {
        let config = thermal_config();
        let mut generator = SyntheticSystemGenerator::new(SyntheticConfig::default(), seed);
        let system = generator.generate();
        let placement_grid = PlacementGrid::new(16, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let Ok(placement) = random_initial_placement(&system, &placement_grid, 0.2, &mut rng) else {
            return Ok(());
        };
        let fast = FastThermalModel::characterize(
            &config,
            system.interposer_width(),
            system.interposer_height(),
            &CharacterizationOptions {
                footprint_samples_mm: vec![4.0, 10.0, 16.0],
                distance_bins: 12,
                ..CharacterizationOptions::default()
            },
        ).unwrap();
        let temp = fast.max_temperature(&system, &placement).unwrap();
        prop_assert!(temp.is_finite());
        prop_assert!(temp >= config.ambient_c);

        // Doubling every chiplet's power doubles the rise (LTI superposition).
        let mut doubled = rlp_chiplet::ChipletSystem::new(
            "doubled",
            system.interposer_width(),
            system.interposer_height(),
        );
        let mut id_map = Vec::new();
        for (_, c) in system.chiplets() {
            id_map.push(doubled.add_chiplet(rlp_chiplet::Chiplet::new(
                c.name(),
                c.width(),
                c.height(),
                c.power() * 2.0,
            )));
        }
        for net in system.nets() {
            doubled.add_net(rlp_chiplet::Net::new(
                id_map[net.from.index()],
                id_map[net.to.index()],
                net.wires,
            ));
        }
        let doubled_temp = fast.max_temperature(&doubled, &placement).unwrap();
        let rise = temp - config.ambient_c;
        let doubled_rise = doubled_temp - config.ambient_c;
        prop_assert!((doubled_rise - 2.0 * rise).abs() < 1e-6 * (1.0 + rise.abs()));
    }
}
